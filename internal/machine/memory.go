package machine

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrUnsupported is returned when an instruction outside the memory's
// instruction set is applied, violating the uniformity requirement.
var ErrUnsupported = errors.New("machine: instruction not in memory's instruction set")

// ErrBadOperand is returned when an instruction receives an argument of the
// wrong kind (for example a non-numeric operand to add).
var ErrBadOperand = errors.New("machine: bad operand")

// ErrOutOfRange is returned when a location index is negative, or exceeds a
// bounded memory's size.
var ErrOutOfRange = errors.New("machine: location out of range")

// location is the state of a single memory location. Plain-value
// instructions use val; l-buffer instructions use buf/writes. A location may
// be used in both modes only if the instruction set mixes both families
// (none of the paper's sets do).
type location struct {
	val    Value
	buf    []Value // most recent l buffer-writes, oldest first
	writes int     // total buffer-writes ever applied

	// Channel state (ChanKind != ChanNone, see channel.go): pending holds
	// sent-but-undelivered messages in send order, inbox holds
	// delivered-but-unreceived messages in delivery order. Kind and cap are
	// structural (fixed at construction, excluded from hashing); the queues
	// are observable state and fold into cellHash.
	pending  []Value
	inbox    []Value
	chanKind ChanKind
	chanCap  int
}

// Memory is a collection of identical locations supporting one instruction
// set. A Memory may be bounded (fixed number of locations) or unbounded
// (locations materialize on first touch), matching the paper's Table 1 rows
// whose space complexity is infinite.
//
// Memory is not safe for concurrent use: the process runtime serializes all
// instruction applications, which is exactly the atomicity the model grants.
type Memory struct {
	set       InstrSet
	locs      []location
	caps      []int // per-location buffer capacity; nil means uniform set l
	unbounded bool
	stats     Stats
	// fp is the incrementally maintained canonical fingerprint: the XOR of
	// locHash over all locations, updated per mutating instruction. See
	// hash.go for the canonicalization rules. fph is the second lane of the
	// 128-bit fingerprint (locHash128), maintained by the same hooks.
	fp  uint64
	fph uint64
}

// Option configures a Memory.
type Option func(*Memory)

// WithUnbounded lets the memory grow on first touch to any location index;
// Footprint reports how many locations were actually used. It models the
// unbounded-space rows of Table 1 (Section 9).
func WithUnbounded() Option {
	return func(m *Memory) { m.unbounded = true }
}

// WithCapacities overrides the buffer capacity per location, enabling the
// heterogeneous-capacity extension of Section 6.2 (sum of capacities >= n-1).
// len(caps) must equal the number of locations.
func WithCapacities(caps []int) Option {
	return func(m *Memory) {
		m.caps = append([]int(nil), caps...)
	}
}

// WithInitial sets the initial value of specific locations; unlisted
// locations keep the default 0. Several of the paper's protocols initialize
// a location to 1 (the multiply-based counters of Section 3).
func WithInitial(vals map[int]Value) Option {
	return func(m *Memory) {
		for loc, v := range vals {
			if loc < 0 || loc >= len(m.locs) {
				panic(fmt.Sprintf("machine: WithInitial location %d out of range", loc))
			}
			m.locs[loc].val = v
		}
	}
}

// New creates a memory of size locations all supporting set. Numeric
// locations start holding 0 (represented lazily as nil, which AsInt reads
// as 0); buffers start empty, so the first l-buffer-read returns all-nil,
// the paper's ⊥ padding.
func New(set InstrSet, size int, opts ...Option) *Memory {
	if size < 0 {
		panic("machine: negative memory size")
	}
	m := &Memory{set: set, locs: make([]location, size)}
	m.stats.PerLoc = make([]int64, size)
	for _, o := range opts {
		o(m)
	}
	if m.caps != nil && len(m.caps) != size {
		panic("machine: WithCapacities length mismatch")
	}
	for i := range m.locs {
		m.locs[i].val = normValue(m.locs[i].val)
		lo, hi := locHash128(i, &m.locs[i])
		m.fp ^= lo
		m.fph ^= hi
	}
	return m
}

// Clone returns an independent deep copy of the memory in O(locations):
// plain values are copied defensively (words are immutable, big.Ints
// duplicated), buffers get fresh backing arrays (entries are immutable by
// convention), and the instrumentation counters are duplicated. The
// instruction set, capacities, and fingerprint carry over unchanged; the
// clone and the original never observe each other's subsequent instructions.
// Clone only reads the receiver: concurrent Clones of one Memory are safe as
// long as no goroutine concurrently applies instructions to it (the
// System.Fork concurrency contract).
func (m *Memory) Clone() *Memory {
	n := &Memory{
		set:       m.set,
		caps:      m.caps, // immutable after construction
		unbounded: m.unbounded,
		fp:        m.fp,
		fph:       m.fph,
	}
	n.locs = make([]location, len(m.locs))
	copy(n.locs, m.locs)
	for i := range n.locs {
		l := &n.locs[i]
		l.val = cloneValue(l.val)
		l.buf = cloneValues(l.buf)
		l.pending = cloneValues(l.pending)
		l.inbox = cloneValues(l.inbox)
	}
	n.stats = m.stats.cloneInternal()
	return n
}

// cloneValues deep-copies a value queue, returning nil for an empty one. The
// nil matters: a queue that drained back to empty keeps its backing array,
// and copying the empty slice header would leave every clone appending into
// the source's storage — sibling forks would overwrite each other's sends.
func cloneValues(vs []Value) []Value {
	if len(vs) == 0 {
		return nil
	}
	return append([]Value(nil), vs...)
}

// CloneInto is Clone writing over a recycled Memory: semantically identical
// to n = m.Clone(), but n's location and instrumentation buffers are reused
// when they have capacity, so a steady-state fork-and-discard loop (the
// explorer's, via sim.Pool) allocates nothing here beyond defensive copies
// of big.Int contents. n's previous contents are destroyed. Like Clone it
// only reads the receiver.
func (m *Memory) CloneInto(n *Memory) {
	n.set = m.set
	n.caps = m.caps // immutable after construction
	n.unbounded = m.unbounded
	n.fp = m.fp
	n.fph = m.fph
	n.locs = append(n.locs[:0], m.locs...)
	for i := range n.locs {
		l := &n.locs[i]
		l.val = cloneValue(l.val)
		l.buf = cloneValues(l.buf)
		l.pending = cloneValues(l.pending)
		l.inbox = cloneValues(l.inbox)
	}
	perLoc := append(n.stats.PerLoc[:0], m.stats.PerLoc...)
	n.stats = m.stats
	n.stats.PerLoc = perLoc
	n.stats.PerOp = nil
}

// Set returns the memory's instruction set.
func (m *Memory) Set() InstrSet { return m.set }

// Size returns the current number of locations (for unbounded memories, the
// high-water mark of touched indices plus one).
func (m *Memory) Size() int { return len(m.locs) }

// capacity returns the l-buffer capacity of location i.
func (m *Memory) capacity(i int) int {
	if m.caps != nil && i < len(m.caps) {
		return m.caps[i]
	}
	return m.set.bufferLen
}

func (m *Memory) grow(loc int) error {
	if loc < 0 {
		return fmt.Errorf("%w: location %d", ErrOutOfRange, loc)
	}
	if loc < len(m.locs) {
		return nil
	}
	if !m.unbounded {
		return fmt.Errorf("%w: location %d of %d", ErrOutOfRange, loc, len(m.locs))
	}
	for len(m.locs) <= loc {
		m.locs = append(m.locs, location{})
		m.stats.PerLoc = append(m.stats.PerLoc, 0)
	}
	return nil
}

// Apply performs one atomic instruction on one location and returns its
// result. It is the only way the contents of memory change, aside from
// MultiAssign.
func (m *Memory) Apply(loc int, op Op, args ...Value) (Value, error) {
	if !m.set.Supports(op) {
		return nil, fmt.Errorf("%w: %v on %v", ErrUnsupported, op, m.set)
	}
	if len(args) != op.arity() {
		return nil, fmt.Errorf("%w: %v takes %d arguments, got %d",
			ErrBadOperand, op, op.arity(), len(args))
	}
	if err := m.grow(loc); err != nil {
		return nil, err
	}
	res, err := m.apply(loc, op, args)
	if err != nil {
		return nil, err
	}
	m.stats.record(loc, op, &m.locs[loc])
	return res, nil
}

// apply dispatches without instrumentation and keeps the canonical
// fingerprint current: for a mutating instruction the touched location's
// hash is XORed out before and back in after, so the rolling fingerprint is
// updated per instruction rather than recomputed. Used by Apply and
// MultiAssign.
func (m *Memory) apply(loc int, op Op, args []Value) (Value, error) {
	if op.Trivial() {
		return m.applyOp(loc, op, args)
	}
	preLo, preHi := locHash128(loc, &m.locs[loc])
	res, err := m.applyOp(loc, op, args)
	if err == nil {
		postLo, postHi := locHash128(loc, &m.locs[loc])
		m.fp ^= preLo ^ postLo
		m.fph ^= preHi ^ postHi
	}
	return res, err
}

// applyOp performs the instruction itself. Numeric instructions run on the
// allocation-free word fast path whenever the location contents and operands
// fit in int64, promoting to *big.Int only on overflow (the paper's multiply
// rows grow without bound, so the slow path stays reachable).
func (m *Memory) applyOp(loc int, op Op, args []Value) (Value, error) {
	l := &m.locs[loc]
	num := func(v Value) (*big.Int, error) {
		x, ok := AsInt(v)
		if !ok {
			return nil, fmt.Errorf("%w: %v requires numeric value, have %T",
				ErrBadOperand, op, v)
		}
		return x, nil
	}
	switch op {
	case OpRead, OpReadMax:
		return cloneValue(l.val), nil

	case OpWrite:
		l.val = normValue(args[0])
		return nil, nil

	case OpWriteZero, OpReset:
		l.val = word(0)
		return nil, nil

	case OpWriteOne:
		l.val = word(1)
		return nil, nil

	case OpTestAndSet:
		if cur, ok := asWord(l.val); ok {
			if cur == 0 {
				l.val = word(1)
			}
			return word(cur), nil
		}
		cur, err := num(l.val)
		if err != nil {
			return nil, err
		}
		old := new(big.Int).Set(cur)
		if cur.Sign() == 0 {
			l.val = word(1)
		}
		return old, nil

	case OpSwap:
		old := l.val
		l.val = normValue(args[0])
		return old, nil

	case OpFetchAndAdd:
		old := cloneValue(l.val)
		if err := m.addTo(l, args[0], num); err != nil {
			return nil, err
		}
		return old, nil

	case OpFetchAndIncrement:
		old := cloneValue(l.val)
		if err := m.addTo(l, word(1), num); err != nil {
			return nil, err
		}
		return old, nil

	case OpFetchAndMultiply:
		old := cloneValue(l.val)
		if err := m.mulTo(l, args[0], num); err != nil {
			return nil, err
		}
		return old, nil

	case OpIncrement:
		return nil, m.addTo(l, word(1), num)

	case OpDecrement:
		return nil, m.addTo(l, word(-1), num)

	case OpAdd:
		return nil, m.addTo(l, args[0], num)

	case OpMultiply:
		return nil, m.mulTo(l, args[0], num)

	case OpSetBit:
		if cur, ok := asWord(l.val); ok && cur >= 0 {
			if bit, ok := asWord(args[0]); ok && bit >= 0 && bit < 62 {
				l.val = word(cur | int64(1)<<bit)
				return nil, nil
			}
		}
		cur, err := num(l.val)
		if err != nil {
			return nil, err
		}
		bit, err := num(args[0])
		if err != nil {
			return nil, err
		}
		if !bit.IsInt64() || bit.Sign() < 0 {
			return nil, fmt.Errorf("%w: set-bit index %v", ErrBadOperand, bit)
		}
		l.val = new(big.Int).SetBit(cur, int(bit.Int64()), 1)
		return nil, nil

	case OpWriteMax:
		if cur, ok := asWord(l.val); ok {
			if arg, ok := asWord(args[0]); ok {
				if arg > cur {
					l.val = word(arg)
				}
				return nil, nil
			}
		}
		cur, err := num(l.val)
		if err != nil {
			return nil, err
		}
		arg, err := num(args[0])
		if err != nil {
			return nil, err
		}
		if arg.Cmp(cur) > 0 {
			l.val = normValue(new(big.Int).Set(arg))
		}
		return nil, nil

	case OpBufferRead:
		cap := m.capacity(loc)
		out := make([]Value, cap)
		// The first cap-len(buf) entries stay nil (the paper's ⊥).
		copy(out[cap-len(l.buf):], l.buf)
		return out, nil

	case OpBufferWrite:
		cap := m.capacity(loc)
		l.buf = append(l.buf, args[0])
		if len(l.buf) > cap {
			l.buf = l.buf[len(l.buf)-cap:]
		}
		l.writes++
		return nil, nil

	case OpCompareAndSwap:
		old := cloneValue(l.val)
		if EqualValues(l.val, args[0]) {
			l.val = normValue(args[1])
		}
		return old, nil

	case OpChanSend, OpChanRecv, OpChanDeliver, OpChanDrop:
		return m.applyChan(loc, l, op, args)

	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, op)
	}
}

// addTo adds delta to l.val in place, on the word fast path when possible.
func (m *Memory) addTo(l *location, delta Value, num func(Value) (*big.Int, error)) error {
	if cur, ok := asWord(l.val); ok {
		if d, ok := asWord(delta); ok && !addOverflows(cur, d) {
			l.val = word(cur + d)
			return nil
		}
	}
	cur, err := num(l.val)
	if err != nil {
		return err
	}
	arg, err := num(delta)
	if err != nil {
		return err
	}
	l.val = normValue(new(big.Int).Add(cur, arg))
	return nil
}

// mulTo multiplies l.val by factor in place, on the word fast path when
// possible.
func (m *Memory) mulTo(l *location, factor Value, num func(Value) (*big.Int, error)) error {
	if cur, ok := asWord(l.val); ok {
		if f, ok := asWord(factor); ok {
			if prod, ok := mulInt64(cur, f); ok {
				l.val = word(prod)
				return nil
			}
		}
	}
	cur, err := num(l.val)
	if err != nil {
		return err
	}
	arg, err := num(factor)
	if err != nil {
		return err
	}
	l.val = normValue(new(big.Int).Mul(cur, arg))
	return nil
}

// Assignment names one write-class instruction of an atomic multiple
// assignment.
type Assignment struct {
	Loc  int
	Op   Op
	Args []Value
}

// MultiAssign atomically performs one write-class instruction per listed
// location, the paper's model of a simple transaction (Section 7). The whole
// call is a single step. Locations must be distinct.
func (m *Memory) MultiAssign(writes []Assignment) error {
	if !m.set.multiAssign {
		return fmt.Errorf("%w: multiple assignment on %v", ErrUnsupported, m.set)
	}
	seen := make(map[int]bool, len(writes))
	for _, w := range writes {
		if !w.Op.WriteClass() {
			return fmt.Errorf("%w: %v is not a write-class instruction in a multiple assignment",
				ErrBadOperand, w.Op)
		}
		if !m.set.Supports(w.Op) {
			return fmt.Errorf("%w: %v on %v", ErrUnsupported, w.Op, m.set)
		}
		if len(w.Args) != w.Op.arity() {
			return fmt.Errorf("%w: %v takes %d arguments, got %d",
				ErrBadOperand, w.Op, w.Op.arity(), len(w.Args))
		}
		if seen[w.Loc] {
			return fmt.Errorf("%w: duplicate location %d in multiple assignment",
				ErrBadOperand, w.Loc)
		}
		seen[w.Loc] = true
		if err := m.grow(w.Loc); err != nil {
			return err
		}
	}
	for _, w := range writes {
		if _, err := m.apply(w.Loc, w.Op, w.Args); err != nil {
			return err
		}
	}
	m.stats.recordMulti(writes, m)
	return nil
}

// Peek returns the current plain value of a location without counting as a
// step. It exists for tests, adversaries, and instrumentation — algorithms
// must go through Apply.
func (m *Memory) Peek(loc int) Value {
	if loc < 0 || loc >= len(m.locs) {
		return nil
	}
	return cloneValue(m.locs[loc].val)
}

// PeekBuffer returns a copy of the buffer contents of a location (oldest
// first, unpadded) without counting as a step.
func (m *Memory) PeekBuffer(loc int) []Value {
	if loc < 0 || loc >= len(m.locs) {
		return nil
	}
	return append([]Value(nil), m.locs[loc].buf...)
}

// BufferWrites reports how many l-buffer-writes location loc has absorbed.
func (m *Memory) BufferWrites(loc int) int {
	if loc < 0 || loc >= len(m.locs) {
		return 0
	}
	return m.locs[loc].writes
}

// Stats returns a copy of the memory's instrumentation counters.
func (m *Memory) Stats() Stats { return m.stats.clone() }

// Fingerprint returns a deterministic string capturing the canonical
// contents of memory. Locations in the zero state (value 0, empty buffer)
// are omitted, so two memories are observationally equivalent — every
// instruction sequence returns the same results on both — exactly when
// their fingerprints are equal, regardless of value representation or of
// how many zero locations an unbounded memory has materialized. Tests and
// the differential suites compare configurations with it; the explorer's
// dedup key uses the incremental Fingerprint64 instead.
func (m *Memory) Fingerprint() string {
	out := make([]byte, 0, 64)
	for i := range m.locs {
		l := &m.locs[i]
		if len(l.buf) == 0 && zeroValue(l.val) && len(l.pending) == 0 && len(l.inbox) == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("%d=%s", i, canonicalValueString(l.val))...)
		if len(l.buf) > 0 {
			out = append(out, '[')
			for _, v := range l.buf {
				out = append(out, canonicalValueString(v)...)
				out = append(out, ',')
			}
			out = append(out, ']')
		}
		if len(l.pending) > 0 || len(l.inbox) > 0 {
			out = append(out, "p("...)
			for _, v := range canonicalPending(l) {
				out = append(out, canonicalValueString(v)...)
				out = append(out, ',')
			}
			out = append(out, ")i("...)
			for _, v := range l.inbox {
				out = append(out, canonicalValueString(v)...)
				out = append(out, ',')
			}
			out = append(out, ')')
		}
		out = append(out, ';')
	}
	return string(out)
}

// Fingerprint64 returns the canonical 64-bit fingerprint of the memory
// contents. It is maintained incrementally — each mutating instruction
// updates it in O(touched location) — so reading it is free; equal states
// always fingerprint equally, and distinct states collide only with the
// usual 64-bit hash probability. It is the memory component of the
// explorer's seen-state key.
func (m *Memory) Fingerprint64() uint64 { return m.fp }

// Fingerprint128 returns the canonical 128-bit fingerprint of the memory
// contents: two independently tagged lanes over the same per-location terms
// as Fingerprint64, maintained by the same mutating-instruction hooks, so
// reading it is free. It feeds the sim layer's incremental StateHash128,
// letting the explorer's compacted keying path stop re-streaming the memory
// per state.
func (m *Memory) Fingerprint128() Hash128 { return Hash128{Lo: m.fp, Hi: m.fph} }
