package machine

import (
	"math/big"
	"sort"
)

// Canonical state hashing. The explorer deduplicates configurations by a
// canonical key, whose memory component is a 64-bit fingerprint maintained
// incrementally: every non-trivial instruction updates the memory's rolling
// fingerprint by XORing out the touched location's old hash and XORing in
// its new one, so keeping the fingerprint current costs O(touched location)
// per step instead of O(memory) per query.
//
// "Canonical" means representation-independent: a word, a *big.Int, and (for
// zero) the lazily-nil initial contents all hash identically when they stand
// for the same integer, matching EqualValues. Locations in the canonical
// zero state (value 0, empty buffer) hash to 0 and therefore contribute
// nothing, so a bounded memory and an unbounded memory holding the same
// values fingerprint equally regardless of how many zero locations have
// materialized.

const (
	hashSeed      = 0x9e3779b97f4a7c15
	hashBigTag    = 0x6a09e667f3bcc908
	hashLocTag    = 0xbb67ae8584caa73b
	hashBlobTag   = 0x3c6ef372fe94f82b
	hashRawIntTag = 0xa54ff53a5f1d36f1
	hashVecTag    = 0x510e527fade682d1
	hashSliceTag  = 0x9b05688c2b3e6c1f
	hashCellTag   = 0x1f83d9abfb41bd6b
	hashOrbitTag  = 0x5be0cd19137e2179
	hashLoc128Tag = 0x2b992ddfa23249d6
	hashChanTag   = 0x7c1592dbd9c2f6a3
)

// Hash128 is a 128-bit rolling fingerprint: two independently seeded
// splitmix64 lanes fed the same word stream (the second lane remixes each
// word against its own tag before absorbing it, so the lanes decorrelate).
// It is the unit of the explorer's compacted seen-state modes, which store
// fingerprints of the canonical configuration key instead of the key bytes:
// equal streams always produce equal fingerprints, distinct streams collide
// with probability ~2^-64 per lane. Use SeedHash128 to start a stream and
// Word to absorb; HashBytes128 fingerprints an already-materialized key.
type Hash128 struct{ Lo, Hi uint64 }

const (
	hash128SeedLo  = 0x243f6a8885a308d3 // first words of pi, the customary
	hash128SeedHi  = 0x13198a2e03707344 // nothing-up-my-sleeve constants
	hash128LaneTag = 0x452821e638d01377
)

// SeedHash128 returns the initial state of a 128-bit fingerprint stream.
func SeedHash128() Hash128 {
	return Hash128{Lo: hash128SeedLo, Hi: hash128SeedHi}
}

// Word absorbs one 64-bit word into both lanes and returns the new state.
func (h Hash128) Word(w uint64) Hash128 {
	return Hash128{
		Lo: Mix64(h.Lo ^ w),
		Hi: Mix64(h.Hi ^ Mix64(w^hash128LaneTag)),
	}
}

// HashBytes128 fingerprints a byte string: two FNV-1a lanes with distinct
// offsets, each finalized through the splitmix mixer. It is the byte-stream
// counterpart of the Word chain, used where a canonical key is already
// materialized (the symmetry-reduced keys, whose sorted-multiset
// canonicalization needs the bytes anyway).
func HashBytes128(p []byte) Hash128 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	lo, hi := uint64(offset64), uint64(offset64)^hash128LaneTag
	for _, b := range p {
		lo = (lo ^ uint64(b)) * prime64
		hi = (hi ^ uint64(b^0xa5)) * prime64
	}
	return Hash128{Lo: Mix64(lo), Hi: Mix64(hi ^ hash128SeedHi)}
}

// Mix64 is the splitmix64 finalizer: a cheap bijective mixer used to chain
// canonical state into rolling hashes. Exported for the sim and consensus
// layers, which compose process-local state keys out of value hashes.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashInt64(x int64) uint64 {
	return Mix64(uint64(x) ^ hashSeed)
}

func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return Mix64(h ^ hashBlobTag)
}

// Hashable lets a structured payload provide its canonical 64-bit hash
// directly. Payloads stored on hot protocol paths (the swap cells, the
// single-writer register cells) implement it because the reflective
// fallback — hashing the payload's formatted form — costs more than the
// instruction it instruments. Implementations must agree with EqualValues:
// payloads that compare equal must hash equal.
type Hashable interface {
	Hash64() uint64
}

// HashValue returns the canonical 64-bit hash of a Value: numeric values
// hash by integer value regardless of representation (nil ≡ word(0) ≡ a
// zero *big.Int), Hashable payloads by their own canonical hash, and other
// structured payloads by their canonical string form — the same
// equivalence EqualValues decides.
func HashValue(v Value) uint64 {
	switch t := v.(type) {
	case nil:
		return hashInt64(0)
	case word:
		return hashInt64(int64(t))
	case *big.Int:
		if t == nil {
			return hashInt64(0)
		}
		if t.IsInt64() {
			return hashInt64(t.Int64())
		}
		h := uint64(hashBigTag)
		if t.Sign() < 0 {
			h = Mix64(h ^ 1)
		}
		for _, w := range t.Bits() {
			h = Mix64(h ^ uint64(w))
		}
		return h
	case Hashable:
		return t.Hash64()
	case int:
		// Raw-int payloads (register cell contents) are distinct from the
		// numeric Value representations under EqualValues, so they get
		// their own tagged hash.
		return Mix64(hashInt64(int64(t)) ^ hashRawIntTag)
	case string:
		return hashString(t)
	case []int64:
		// Lap vectors and count slices, stored by the register protocols.
		h := Mix64(uint64(len(t)) ^ hashVecTag)
		for _, x := range t {
			h = Mix64(h ^ uint64(x))
		}
		return h
	case []Value:
		// Buffer-read results and heterogeneous payload vectors.
		h := Mix64(uint64(len(t)) ^ hashSliceTag)
		for _, e := range t {
			h = Mix64(h ^ HashValue(e))
		}
		return h
	default:
		return hashString(fingerprintValue(v))
	}
}

// zeroValue reports whether v is the canonical zero contents of a plain
// location: nil (never written) or any numeric representation of 0.
func zeroValue(v Value) bool {
	switch t := v.(type) {
	case nil:
		return true
	case word:
		return t == 0
	case *big.Int:
		return t == nil || t.Sign() == 0
	default:
		return false
	}
}

// canonicalValueString renders a Value for the string fingerprint under the
// same equivalence HashValue uses: all representations of an integer render
// identically (nil renders as "0").
func canonicalValueString(v Value) string {
	if zeroValue(v) {
		return "0"
	}
	return fingerprintValue(normValue(v))
}

// cellHash is the canonical, location-index-free hash of one location's
// observable contents: its plain value and its buffer, sequenced so that
// order and length matter. A location in the zero state hashes to 0, so the
// hash doubles as a zero-state test; a non-zero cell whose hash lands on 0
// (one in 2^64) is nudged to 1 to keep the two cases apart. The buffer-write
// total (`writes`) is instrumentation, not observable state, and is
// excluded. Being index-free makes equal-content locations hash equally,
// which is what the symmetry machinery sorts on.
func cellHash(l *location) uint64 {
	if len(l.buf) == 0 && zeroValue(l.val) && len(l.pending) == 0 && len(l.inbox) == 0 {
		return 0
	}
	h := Mix64(hashCellTag ^ HashValue(l.val))
	for _, v := range l.buf {
		h = Mix64(h ^ HashValue(v))
	}
	if len(l.pending) > 0 || len(l.inbox) > 0 {
		// Channel queues: pending and inbox are hashed as length-delimited
		// sequences under the channel tag. Bag channels canonicalize pending
		// as a sorted multiset of message hashes, so physical send order
		// never splits one bag state into several keys; FIFO pending and the
		// inbox are order-sensitive by definition. Kind and capacity are
		// structural and excluded, like buffer capacities.
		h = Mix64(h ^ hashChanTag ^ uint64(len(l.pending)))
		if l.chanKind == ChanBag {
			var stack [8]uint64
			hs := stack[:0]
			for _, v := range l.pending {
				hs = append(hs, HashValue(v))
			}
			// Insertion sort: pending is capacity-bounded and small.
			for i := 1; i < len(hs); i++ {
				for j := i; j > 0 && hs[j] < hs[j-1]; j-- {
					hs[j], hs[j-1] = hs[j-1], hs[j]
				}
			}
			for _, x := range hs {
				h = Mix64(h ^ x)
			}
		} else {
			for _, v := range l.pending {
				h = Mix64(h ^ HashValue(v))
			}
		}
		h = Mix64(h ^ hashChanTag ^ uint64(len(l.inbox)))
		for _, v := range l.inbox {
			h = Mix64(h ^ HashValue(v))
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// canonicalPending returns the pending queue in its canonical order: send
// order for FIFO channels, sorted by canonical message hash for bags (the
// order cellHash folds them in). Used by the string Fingerprint so the two
// canonical forms agree.
func canonicalPending(l *location) []Value {
	if l.chanKind != ChanBag || len(l.pending) < 2 {
		return l.pending
	}
	out := append([]Value(nil), l.pending...)
	sort.Slice(out, func(i, j int) bool { return HashValue(out[i]) < HashValue(out[j]) })
	return out
}

// locHash is cellHash bound to the location's index — the per-location term
// of the exact rolling fingerprint, where position matters. Zero-state
// locations hash to 0 and contribute nothing.
func locHash(i int, l *location) uint64 {
	ch := cellHash(l)
	if ch == 0 {
		return 0
	}
	return Mix64(ch ^ Mix64(uint64(i)^hashLocTag))
}

// locHash128 is locHash widened to two lanes: the low lane is the exact
// 64-bit per-location term, the high lane remixes it against its own tag so
// the lanes decorrelate. Zero-state locations contribute (0, 0) in both
// lanes, preserving the bounded/unbounded equivalence. It is the
// per-location term of the rolling 128-bit fingerprint.
func locHash128(i int, l *location) (lo, hi uint64) {
	lo = locHash(i, l)
	if lo == 0 {
		return 0, 0
	}
	return lo, Mix64(lo ^ hashLoc128Tag)
}

// CellHash pairs a location index with the index-free canonical hash of its
// contents. It is the unit the symmetry-reduced state key sorts to
// canonicalize the memory up to location permutation.
type CellHash struct {
	Loc  int
	Hash uint64
}

// AppendCellHashes appends one entry per location outside the canonical zero
// state — its index and index-free content hash — and returns the extended
// slice. Zero locations are omitted, so bounded and unbounded memories
// holding the same values report the same cells.
func (m *Memory) AppendCellHashes(dst []CellHash) []CellHash {
	for i := range m.locs {
		if h := cellHash(&m.locs[i]); h != 0 {
			dst = append(dst, CellHash{Loc: i, Hash: h})
		}
	}
	return dst
}

// FoldCellHashes folds a sorted sequence of cell hashes into one 64-bit
// digest. Callers must sort first: the fold is position-sensitive over the
// sorted sequence, which preserves multiplicity (two equal cells do not
// cancel the way an XOR would) while staying invariant under location
// permutation.
func FoldCellHashes(sorted []CellHash) uint64 {
	h := uint64(hashOrbitTag)
	for _, c := range sorted {
		h = Mix64(h ^ c.Hash)
	}
	return h
}

// SymFingerprint64 returns the orbit-canonical fingerprint of the memory
// contents: the canonical form is the multiset of non-zero cell contents —
// the minimum of the exact representation over all location permutations,
// realized cheaply by sorting the index-free cell hashes. Two memories
// related by a permutation of their locations always fingerprint equally;
// distinct orbits collide only with 64-bit hash probability. It is the
// memory component of the explorer's symmetry-reduced state key.
func (m *Memory) SymFingerprint64() uint64 {
	cells := m.AppendCellHashes(make([]CellHash, 0, 16))
	sort.Slice(cells, func(i, j int) bool { return cells[i].Hash < cells[j].Hash })
	return FoldCellHashes(cells)
}
