// Package machine implements the shared-memory multiprocessor model of
// Ellen, Gelashvili, Shavit and Zhu (PODC 2016): a collection of identical
// memory locations that all support the same set of synchronization
// instructions (the paper's "uniformity requirement"), applied atomically
// one instruction per step.
//
// Values stored in locations are untyped (Value); numeric instructions
// operate on arbitrary-precision integers (*big.Int) because several of the
// paper's constructions (prime-exponent counters for multiply, base-3n digit
// counters for add, bit-block counters for set-bit) deliberately exploit
// unbounded word size, a standard assumption the paper makes explicit in its
// conclusion.
package machine

import "fmt"

// Op identifies a synchronization instruction that may be applied to a
// memory location. The set of instructions a memory supports is fixed at
// construction time (InstrSet); applying an instruction outside that set is
// an error, enforcing the paper's uniformity requirement.
type Op uint8

// The instructions studied in the paper (Table 1 and Sections 3-9).
const (
	// OpRead returns the value stored in the location.
	OpRead Op = iota
	// OpWrite stores its argument in the location and returns nothing.
	OpWrite
	// OpWriteZero stores the number 0 (the restricted write(0) of Section 9).
	OpWriteZero
	// OpWriteOne stores the number 1 (the restricted write(1) of Section 9).
	OpWriteOne
	// OpTestAndSet returns the number stored in the location and sets it to
	// 1 if it contained 0. This is the paper's (slightly stronger than
	// standard) definition from Section 1.
	OpTestAndSet
	// OpReset stores the number 0 and returns nothing (Section 9).
	OpReset
	// OpSwap stores its argument and returns the previous value (Section 8).
	OpSwap
	// OpFetchAndAdd adds its numeric argument to the location and returns
	// the previous value.
	OpFetchAndAdd
	// OpFetchAndIncrement adds 1 to the location and returns the previous
	// value (Section 5).
	OpFetchAndIncrement
	// OpFetchAndMultiply multiplies the location by its argument and returns
	// the previous value (Table 1).
	OpFetchAndMultiply
	// OpIncrement adds 1 to the location and returns nothing (Section 5).
	OpIncrement
	// OpDecrement subtracts 1 from the location and returns nothing
	// (Section 1).
	OpDecrement
	// OpAdd adds its numeric argument to the location and returns nothing
	// (Section 3).
	OpAdd
	// OpMultiply multiplies the location by its numeric argument and returns
	// nothing (Sections 1 and 3).
	OpMultiply
	// OpSetBit sets bit i of the location to 1, where i is the integer
	// argument, and returns nothing (Section 3).
	OpSetBit
	// OpReadMax returns the value of a max-register (Section 4).
	OpReadMax
	// OpWriteMax stores its numeric argument if it exceeds the current
	// value, and returns nothing (Section 4).
	OpWriteMax
	// OpBufferRead returns the arguments of the l most recent OpBufferWrite
	// instructions applied to the location, least recent first, padded with
	// nil if fewer than l writes have occurred (Section 6).
	OpBufferRead
	// OpBufferWrite records its argument as the most recent write in the
	// location's buffer and returns nothing (Section 6).
	OpBufferWrite
	// OpCompareAndSwap takes two arguments (old, new); if the location
	// contains old it stores new. It returns the previous value either way,
	// so CAS(x, x) doubles as a read, matching Table 1's single-instruction
	// {compare-and-swap} row.
	OpCompareAndSwap

	// The message-passing extension (ROADMAP item 3): channels as
	// first-class locations. A channel location carries two message queues —
	// pending (sent, not yet delivered) and inbox (delivered, not yet
	// received) — so the delivery adversary is an explicit step between send
	// and receive rather than an assumption. Send/recv are process
	// instructions; deliver/drop are the adversary's, issued by the sim
	// layer's delivery branches.

	// OpChanSend appends its argument to the channel's pending queue. It is
	// an error on a full channel (pending+inbox at capacity); the sim layer
	// gates enabledness so exploration never applies a blocked send.
	OpChanSend
	// OpChanRecv removes and returns the head of the channel's inbox. It is
	// an error on an empty inbox; the sim layer gates enabledness.
	OpChanRecv
	// OpChanDeliver takes a rank into the pending queue, moves that message
	// to the inbox tail, and returns it. Each distinct rank is one delivery
	// branch under reordering delivery; ordered delivery only ever picks
	// rank 0 on FIFO channels.
	OpChanDeliver
	// OpChanDrop takes a rank into the pending queue, removes that message
	// without delivering it, and returns it (lossy delivery only).
	OpChanDrop

	numOps = iota
)

var opNames = [numOps]string{
	OpRead:              "read",
	OpWrite:             "write",
	OpWriteZero:         "write(0)",
	OpWriteOne:          "write(1)",
	OpTestAndSet:        "test-and-set",
	OpReset:             "reset",
	OpSwap:              "swap",
	OpFetchAndAdd:       "fetch-and-add",
	OpFetchAndIncrement: "fetch-and-increment",
	OpFetchAndMultiply:  "fetch-and-multiply",
	OpIncrement:         "increment",
	OpDecrement:         "decrement",
	OpAdd:               "add",
	OpMultiply:          "multiply",
	OpSetBit:            "set-bit",
	OpReadMax:           "read-max",
	OpWriteMax:          "write-max",
	OpBufferRead:        "l-buffer-read",
	OpBufferWrite:       "l-buffer-write",
	OpCompareAndSwap:    "compare-and-swap",
	OpChanSend:          "send",
	OpChanRecv:          "recv",
	OpChanDeliver:       "deliver",
	OpChanDrop:          "drop",
}

// String returns the paper's name for the instruction.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// arity reports how many arguments the instruction takes.
func (o Op) arity() int {
	switch o {
	case OpWrite, OpSwap, OpFetchAndAdd, OpFetchAndMultiply, OpAdd,
		OpMultiply, OpSetBit, OpWriteMax, OpBufferWrite,
		OpChanSend, OpChanDeliver, OpChanDrop:
		return 1
	case OpCompareAndSwap:
		return 2
	default:
		return 0
	}
}

// Trivial reports whether the instruction never changes the contents of a
// location (the paper's notion of a trivial instruction: read, read-max,
// l-buffer-read). Non-trivial instructions are the ones that matter for
// covering arguments.
func (o Op) Trivial() bool {
	switch o {
	case OpRead, OpReadMax, OpBufferRead:
		return true
	default:
		return false
	}
}

// WriteClass reports whether the instruction is a pure update whose return
// value is nothing: the class of instructions a process may contribute to an
// atomic multiple assignment (Section 7 models multiple assignment as one
// l-buffer-write per chosen location; we admit the same class for the other
// write-like instructions so heterogeneous variants can be explored).
func (o Op) WriteClass() bool {
	switch o {
	case OpWrite, OpWriteZero, OpWriteOne, OpReset, OpIncrement, OpDecrement,
		OpAdd, OpMultiply, OpSetBit, OpWriteMax, OpBufferWrite, OpChanSend:
		return true
	default:
		return false
	}
}
