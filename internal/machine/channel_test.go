package machine

import "testing"

func newChanMem(t *testing.T, kind ChanKind, size, cap int) *Memory {
	t.Helper()
	specs := make([]ChannelSpec, size)
	for i := range specs {
		specs[i] = ChannelSpec{Loc: i, Kind: kind, Cap: cap}
	}
	return New(SetChannels, size, WithChannels(specs))
}

// TestChannelSendDeliverRecv walks a message through the three-stage
// pipeline and pins queue contents at every step.
func TestChannelSendDeliverRecv(t *testing.T) {
	m := newChanMem(t, ChanFIFO, 1, 4)
	if _, err := m.Apply(0, OpChanSend, Int(7)); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := m.Apply(0, OpChanSend, Int(8)); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := m.PendingLen(0); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	// Recv before any delivery must block.
	if _, err := m.Apply(0, OpChanRecv); err == nil {
		t.Fatal("recv on empty inbox should error")
	}
	msg, err := m.Apply(0, OpChanDeliver, Int(0))
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if !EqualValues(msg, Int(7)) {
		t.Fatalf("delivered %v, want 7", msg)
	}
	if m.PendingLen(0) != 1 || m.InboxLen(0) != 1 {
		t.Fatalf("queues = %d/%d, want 1/1", m.PendingLen(0), m.InboxLen(0))
	}
	got, err := m.Apply(0, OpChanRecv)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !EqualValues(got, Int(7)) {
		t.Fatalf("received %v, want 7", got)
	}
	if m.InboxLen(0) != 0 {
		t.Fatal("inbox should be drained")
	}
}

// TestChannelCapacityAndBlocking pins the full-channel and bad-rank errors.
func TestChannelCapacityAndBlocking(t *testing.T) {
	m := newChanMem(t, ChanFIFO, 1, 2)
	for i := 0; i < 2; i++ {
		if _, err := m.Apply(0, OpChanSend, Int(int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if !m.ChanFull(0) {
		t.Fatal("channel should report full")
	}
	if _, err := m.Apply(0, OpChanSend, Int(9)); err == nil {
		t.Fatal("send on full channel should error")
	}
	// Delivering does not free capacity (pending+inbox is the bound).
	if _, err := m.Apply(0, OpChanDeliver, Int(0)); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if !m.ChanFull(0) {
		t.Fatal("capacity bound covers the inbox too")
	}
	if _, err := m.Apply(0, OpChanDeliver, Int(5)); err == nil {
		t.Fatal("out-of-range rank should error")
	}
	if _, err := m.Apply(1, OpChanSend, Int(0)); err == nil {
		t.Fatal("send out of memory range should error")
	}
}

// TestChannelDropAndReorder pins lossy drops and rank-addressed delivery.
func TestChannelDropAndReorder(t *testing.T) {
	m := newChanMem(t, ChanFIFO, 1, 4)
	for i := 0; i < 3; i++ {
		m.Apply(0, OpChanSend, Int(int64(10+i)))
	}
	dropped, err := m.Apply(0, OpChanDrop, Int(1))
	if err != nil {
		t.Fatalf("drop: %v", err)
	}
	if !EqualValues(dropped, Int(11)) {
		t.Fatalf("dropped %v, want 11", dropped)
	}
	// Deliver rank 1 of the remaining [10, 12]: out-of-order delivery.
	if _, err := m.Apply(0, OpChanDeliver, Int(1)); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	got, _ := m.Apply(0, OpChanRecv)
	if !EqualValues(got, Int(12)) {
		t.Fatalf("received %v, want 12 (reordered)", got)
	}
}

// TestChannelFingerprintRoll pins that channel mutations keep the
// incremental fingerprints consistent with a from-scratch recomputation,
// and that draining a channel returns the fingerprint to its initial value.
func TestChannelFingerprintRoll(t *testing.T) {
	m := newChanMem(t, ChanFIFO, 2, 4)
	initial := m.Fingerprint64()
	recompute := func() (uint64, uint64) {
		var lo, hi uint64
		for i := range m.locs {
			l, h := locHash128(i, &m.locs[i])
			lo ^= l
			hi ^= h
		}
		return lo, hi
	}
	steps := []func(){
		func() { m.Apply(0, OpChanSend, Int(1)) },
		func() { m.Apply(1, OpChanSend, Int(2)) },
		func() { m.Apply(0, OpChanDeliver, Int(0)) },
		func() { m.Apply(1, OpChanDrop, Int(0)) },
		func() { m.Apply(0, OpChanRecv) },
	}
	for i, step := range steps {
		step()
		lo, hi := recompute()
		if m.fp != lo || m.fph != hi {
			t.Fatalf("step %d: rolled fp (%x,%x) != recomputed (%x,%x)", i, m.fp, m.fph, lo, hi)
		}
	}
	if m.Fingerprint64() != initial {
		t.Fatal("drained channels should restore the initial fingerprint")
	}
}

// TestBagChannelCanonical pins the sorted-multiset encoding: two bag
// channels holding the same multiset in different send orders fingerprint
// identically (64-bit, 128-bit, string, and symmetric), while FIFO channels
// keep order-sensitive keys.
func TestBagChannelCanonical(t *testing.T) {
	build := func(kind ChanKind, order []int) *Memory {
		m := newChanMem(t, kind, 1, 8)
		for _, v := range order {
			if _, err := m.Apply(0, OpChanSend, Int(int64(v))); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		return m
	}
	a := build(ChanBag, []int{1, 2, 3})
	b := build(ChanBag, []int{3, 1, 2})
	if a.Fingerprint64() != b.Fingerprint64() {
		t.Error("bag multiset should fingerprint order-independently (64)")
	}
	if a.Fingerprint128() != b.Fingerprint128() {
		t.Error("bag multiset should fingerprint order-independently (128)")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("bag multiset string fingerprints differ")
	}
	if a.SymFingerprint64() != b.SymFingerprint64() {
		t.Error("bag multiset sym fingerprints differ")
	}
	fa := build(ChanFIFO, []int{1, 2, 3})
	fb := build(ChanFIFO, []int{3, 1, 2})
	if fa.Fingerprint64() == fb.Fingerprint64() {
		t.Error("FIFO pending order must stay observable in the fingerprint")
	}
	// Distinct multisets must never merge, bag or not.
	c := build(ChanBag, []int{1, 2})
	d := build(ChanBag, []int{1, 2, 2})
	if c.Fingerprint64() == d.Fingerprint64() {
		t.Error("distinct bag multisets merged")
	}
	// Pending vs inbox placement is observable.
	e := build(ChanFIFO, []int{1})
	f := build(ChanFIFO, []int{1})
	f.Apply(0, OpChanDeliver, Int(0))
	if e.Fingerprint64() == f.Fingerprint64() {
		t.Error("pending and inbox placement must be distinguishable")
	}
}

// TestChannelCloneIndependence pins deep copies of both queues across Clone
// and CloneInto.
func TestChannelCloneIndependence(t *testing.T) {
	m := newChanMem(t, ChanFIFO, 1, 4)
	m.Apply(0, OpChanSend, Int(1))
	m.Apply(0, OpChanSend, Int(2))
	m.Apply(0, OpChanDeliver, Int(0))

	check := func(name string, n *Memory) {
		t.Helper()
		if n.Fingerprint() != m.Fingerprint() {
			t.Fatalf("%s: fingerprint mismatch", name)
		}
		if n.ChannelKind(0) != ChanFIFO || n.ChannelCap(0) != 4 {
			t.Fatalf("%s: channel structure not carried over", name)
		}
		n.Apply(0, OpChanRecv)
		n.Apply(0, OpChanDrop, Int(0))
		if m.PendingLen(0) != 1 || m.InboxLen(0) != 1 {
			t.Fatalf("%s: mutation leaked into original", name)
		}
	}
	check("Clone", m.Clone())
	spare := New(SetChannels, 0)
	m.CloneInto(spare)
	check("CloneInto", spare)
}

// TestChannelLocsAndMisuse covers the structural accessors and non-channel
// misuse errors.
func TestChannelLocsAndMisuse(t *testing.T) {
	m := New(SetReadWrite.WithChannelOps(), 3,
		WithChannels([]ChannelSpec{{Loc: 1, Kind: ChanBag, Cap: 2}}))
	locs := m.AppendChannelLocs(nil)
	if len(locs) != 1 || locs[0] != 1 {
		t.Fatalf("channel locs = %v, want [1]", locs)
	}
	if m.ChannelKind(0) != ChanNone || m.ChannelKind(1) != ChanBag {
		t.Fatal("ChannelKind wrong")
	}
	if _, err := m.Apply(0, OpChanSend, Int(1)); err == nil {
		t.Fatal("send on non-channel location should error")
	}
	if _, err := m.Apply(2, OpChanRecv); err == nil {
		t.Fatal("recv on non-channel location should error")
	}
	// Plain instructions still work alongside channels.
	if _, err := m.Apply(0, OpWrite, Int(5)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := ChanFIFO.String() + "/" + ChanBag.String() + "/" + ChanNone.String(); got != "fifo/bag/none" {
		t.Fatalf("kind strings = %q", got)
	}
}
