package machine

// Stats instruments a Memory. The headline quantity for the paper is
// Footprint — the number of distinct locations ever touched — because the
// hierarchy classifies instruction sets by the number of locations needed to
// solve consensus. Steps and MaxBits feed the step-complexity and
// value-width ablations suggested by the paper's conclusion.
//
// Inside a Memory the counters accumulate into fixed arrays so that
// recording a step costs no map operation and no allocation; Stats()
// snapshots materialize the public PerOp map.
type Stats struct {
	// Steps counts atomic instruction applications (a multiple assignment
	// counts as one step, as in the model).
	Steps int64
	// PerLoc counts steps per location.
	PerLoc []int64
	// PerOp counts applications per instruction. Populated on Stats()
	// snapshots.
	PerOp map[Op]int64
	// MultiAssigns counts atomic multiple assignments.
	MultiAssigns int64
	// MaxBits is the largest bit-width any numeric location ever reached.
	MaxBits int

	// perOp is the allocation-free accumulator behind PerOp.
	perOp [numOps]int64
}

func (s *Stats) record(loc int, op Op, l *location) {
	s.Steps++
	s.perOp[op]++
	if loc < len(s.PerLoc) {
		s.PerLoc[loc]++
	}
	if b := valueBits(l.val); b > s.MaxBits {
		s.MaxBits = b
	}
}

func (s *Stats) recordMulti(writes []Assignment, m *Memory) {
	s.Steps++
	s.MultiAssigns++
	for _, w := range writes {
		s.perOp[w.Op]++
		if w.Loc < len(s.PerLoc) {
			s.PerLoc[w.Loc]++
		}
		if b := valueBits(m.locs[w.Loc].val); b > s.MaxBits {
			s.MaxBits = b
		}
	}
}

// Footprint reports how many distinct locations were touched by at least one
// instruction. For bounded memories running the paper's algorithms this
// equals the algorithm's declared space; for unbounded memories it is the
// measured space consumption.
func (s Stats) Footprint() int {
	n := 0
	for _, c := range s.PerLoc {
		if c > 0 {
			n++
		}
	}
	return n
}

// cloneInternal copies the accumulator form without materializing the PerOp
// snapshot map; Memory.Clone uses it so forking stays allocation-lean.
func (s Stats) cloneInternal() Stats {
	out := s
	out.PerLoc = append([]int64(nil), s.PerLoc...)
	out.PerOp = nil
	return out
}

func (s Stats) clone() Stats {
	out := s
	out.PerLoc = append([]int64(nil), s.PerLoc...)
	out.PerOp = make(map[Op]int64, numOps)
	for op, c := range s.perOp {
		if c != 0 {
			out.PerOp[Op(op)] = c
		}
	}
	return out
}
