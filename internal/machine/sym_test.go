package machine

import "testing"

// TestSymFingerprintLocationInvariant: memories holding the same multiset of
// cell contents at permuted locations share one orbit fingerprint while
// their exact fingerprints differ.
func TestSymFingerprintLocationInvariant(t *testing.T) {
	a := New(SetReadWrite, 3, WithInitial(map[int]Value{0: Int(5), 2: Int(9)}))
	b := New(SetReadWrite, 3, WithInitial(map[int]Value{1: Int(9), 2: Int(5)}))
	if a.SymFingerprint64() != b.SymFingerprint64() {
		t.Fatalf("permuted contents: sym fingerprints %#x vs %#x",
			a.SymFingerprint64(), b.SymFingerprint64())
	}
	if a.Fingerprint64() == b.Fingerprint64() {
		t.Fatal("exact fingerprints unexpectedly merged permuted contents")
	}
}

// TestSymFingerprintMultiset: the fold must preserve multiplicity — two
// equal cells are not allowed to cancel the way an XOR pair would — and
// distinct multisets must stay apart.
func TestSymFingerprintMultiset(t *testing.T) {
	empty := New(SetReadWrite, 2)
	pair := New(SetReadWrite, 2, WithInitial(map[int]Value{0: Int(5), 1: Int(5)}))
	single := New(SetReadWrite, 2, WithInitial(map[int]Value{0: Int(5)}))
	if pair.SymFingerprint64() == empty.SymFingerprint64() {
		t.Fatal("duplicate cells cancelled out of the orbit fingerprint")
	}
	if pair.SymFingerprint64() == single.SymFingerprint64() {
		t.Fatal("multiplicity lost: {5,5} fingerprints like {5}")
	}
}

// TestSymFingerprintZeroCells: untouched and zeroed locations contribute
// nothing, so bounded and unbounded memories with equal observable contents
// agree — the same equivalence the exact fingerprint grants.
func TestSymFingerprintZeroCells(t *testing.T) {
	bounded := New(SetReadWrite, 2, WithInitial(map[int]Value{1: Int(7)}))
	unbounded := New(SetReadWrite, 0, WithUnbounded())
	if _, err := unbounded.Apply(5, OpWrite, Int(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := unbounded.Apply(9, OpWrite, Int(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := unbounded.Apply(9, OpWrite, Int(0)); err != nil { // back to zero state
		t.Fatal(err)
	}
	if bounded.SymFingerprint64() != unbounded.SymFingerprint64() {
		t.Fatalf("zero cells leaked into the orbit fingerprint: %#x vs %#x",
			bounded.SymFingerprint64(), unbounded.SymFingerprint64())
	}
}

// TestAppendCellHashes: index-free hashes equal for equal contents at
// different locations, zero cells omitted, and FoldCellHashes sensitive to
// the sorted sequence.
func TestAppendCellHashes(t *testing.T) {
	m := New(SetReadWrite, 4, WithInitial(map[int]Value{1: Int(5), 3: Int(5)}))
	cells := m.AppendCellHashes(nil)
	if len(cells) != 2 {
		t.Fatalf("cells = %v, want the two non-zero locations", cells)
	}
	if cells[0].Hash != cells[1].Hash {
		t.Fatalf("equal contents hash apart: %#x vs %#x", cells[0].Hash, cells[1].Hash)
	}
	if cells[0].Loc != 1 || cells[1].Loc != 3 {
		t.Fatalf("cell locations = %v, want 1 and 3", cells)
	}
	if FoldCellHashes(cells) == FoldCellHashes(cells[:1]) {
		t.Fatal("fold ignored a cell")
	}
}
