// Package swreg provides arrays of single-writer registers — the substrate
// the racing-counters consensus algorithms scan — over two different
// instruction sets:
//
//   - Direct: n locations supporting {read, write(x)}, one per process
//     (Table 1's {read, write(x)} row, SP = n).
//   - Buffered: ceil(n/l) l-buffers, each simulating the registers of up to
//     l processes through a history object (Lemmas 6.1/6.2, Theorem 6.3).
//
// Values carried through an Array are versioned internally so that a double
// collect over Collect results is a valid snapshot.
package swreg

import (
	"fmt"
	"strings"

	"repro/internal/history"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Array is one process's handle on an array of n single-writer registers,
// register i owned by process i.
type Array interface {
	// Write stores val in the calling process's own register.
	Write(val any)
	// Collect reads every register once, returning the current values
	// (nil where never written) and a version fingerprint: equal
	// fingerprints from consecutive collects certify a snapshot.
	Collect() ([]any, string)
}

// cell is the versioned payload a Direct array stores in each location.
type cell struct {
	seq int64
	val any
}

// Hash64 implements machine.Hashable so hashing register cells on the
// racing hot paths does not fall back to reflective formatting.
func (c cell) Hash64() uint64 {
	h := machine.Mix64(uint64(c.seq) ^ 0x73777267)
	return machine.Mix64(h ^ machine.HashValue(c.val))
}

// Direct is an Array over n read/write locations base..base+n-1.
type Direct struct {
	p    *sim.Proc
	base int
	seq  int64
}

// NewDirect returns process p's handle on the direct register array rooted
// at location base.
func NewDirect(p *sim.Proc, base int) *Direct {
	return &Direct{p: p, base: base}
}

// Write stores val in this process's location: one atomic step.
func (a *Direct) Write(val any) {
	a.seq++
	a.p.Apply(a.base+a.p.ID(), machine.OpWrite, cell{seq: a.seq, val: val})
}

// Collect reads the n locations in order: n atomic steps.
func (a *Direct) Collect() ([]any, string) {
	n := a.p.N()
	vals := make([]any, n)
	var fp strings.Builder
	for i := 0; i < n; i++ {
		v := a.p.Apply(a.base+i, machine.OpRead)
		if v == nil {
			fp.WriteString("-,")
			continue
		}
		c := v.(cell)
		vals[i] = c.val
		fmt.Fprintf(&fp, "%d.%d,", i, c.seq)
	}
	return vals, fp.String()
}

// Buffered is an Array over ceil(n/l) l-buffers: register i lives in the
// history object simulated by buffer floor(i/l), written by at most l
// distinct processes — exactly the fan-in Lemma 6.1 permits.
type Buffered struct {
	p      *sim.Proc
	base   int
	l      int
	groups []*history.Registers
}

// NewBuffered returns process p's handle on the buffered register array
// rooted at location base, over buffers of capacity l.
func NewBuffered(p *sim.Proc, base, l int) *Buffered {
	n := p.N()
	g := (n + l - 1) / l
	groups := make([]*history.Registers, g)
	for i := range groups {
		groups[i] = history.NewRegisters(p, base+i)
	}
	return &Buffered{p: p, base: base, l: l, groups: groups}
}

// Buffers returns how many l-buffers the array occupies: ceil(n/l).
func (a *Buffered) Buffers() int { return len(a.groups) }

// Write appends to this process's group history: one get-history plus one
// atomic buffer-write.
func (a *Buffered) Write(val any) {
	a.groups[a.p.ID()/a.l].Write(a.p.ID(), val)
}

// Collect reads each group's history once: ceil(n/l) atomic steps.
func (a *Buffered) Collect() ([]any, string) {
	n := a.p.N()
	vals := make([]any, 0, n)
	var fp strings.Builder
	for gi, g := range a.groups {
		lo := gi * a.l
		hi := lo + a.l
		if hi > n {
			hi = n
		}
		slots := make([]int, 0, hi-lo)
		for s := lo; s < hi; s++ {
			slots = append(slots, s)
		}
		gv, gfp := g.ReadAll(slots)
		vals = append(vals, gv...)
		fp.WriteString(gfp)
		fp.WriteByte('|')
	}
	return vals, fp.String()
}
