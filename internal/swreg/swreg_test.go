package swreg

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// arrayCase describes one Array implementation under test.
type arrayCase struct {
	name  string
	locs  func(n int) int
	mem   func(n int) *machine.Memory
	build func(p *sim.Proc) Array
}

func cases(l int) []arrayCase {
	return []arrayCase{
		{
			name: "direct",
			locs: func(n int) int { return n },
			mem: func(n int) *machine.Memory {
				return machine.New(machine.SetReadWrite, n)
			},
			build: func(p *sim.Proc) Array { return NewDirect(p, 0) },
		},
		{
			name: fmt.Sprintf("buffered-l%d", l),
			locs: func(n int) int { return (n + l - 1) / l },
			mem: func(n int) *machine.Memory {
				return machine.New(machine.SetBuffers(l), (n+l-1)/l)
			},
			build: func(p *sim.Proc) Array { return NewBuffered(p, 0, l) },
		},
	}
}

// TestLastWriteWins: under random schedules, a final quiescent collect must
// return each process's last written value.
func TestLastWriteWins(t *testing.T) {
	for _, l := range []int{1, 2, 3} {
		for _, tc := range cases(l) {
			t.Run(tc.name, func(t *testing.T) {
				for seed := int64(0); seed < 10; seed++ {
					n := 4
					writes := 5
					mem := tc.mem(n)
					finals := make([]any, n)
					body := func(p *sim.Proc) int {
						a := tc.build(p)
						var last any
						for i := 0; i < writes; i++ {
							last = fmt.Sprintf("p%d-%d", p.ID(), i)
							a.Write(last)
						}
						finals[p.ID()] = last
						return 0
					}
					sys := sim.NewSystem(mem, make([]int, n), body)
					if _, err := sys.Run(sim.NewRandom(seed), 1_000_000); err != nil {
						t.Fatal(err)
					}
					sys.Close()
					// Quiescent read from a fresh same-sized system.
					reader := sim.NewSystem(mem, make([]int, n), func(p *sim.Proc) int {
						if p.ID() != 0 {
							return 0
						}
						vals, _ := tc.build(p).Collect()
						for i, v := range vals {
							if v != finals[i] {
								t.Errorf("seed %d: register %d = %v, want %v", seed, i, v, finals[i])
							}
						}
						return 0
					})
					if _, err := reader.Run(sim.Solo{PID: 0}, 100_000); err != nil {
						t.Fatal(err)
					}
					reader.Close()
				}
			})
		}
	}
}

// TestVersionFingerprint: collects with no intervening writes share a
// fingerprint; a write changes it.
func TestVersionFingerprint(t *testing.T) {
	for _, tc := range cases(2) {
		t.Run(tc.name, func(t *testing.T) {
			n := 3
			mem := tc.mem(n)
			sys := sim.NewSystem(mem, make([]int, n), func(p *sim.Proc) int {
				if p.ID() != 0 {
					return 0
				}
				a := tc.build(p)
				_, fp1 := a.Collect()
				_, fp2 := a.Collect()
				if fp1 != fp2 {
					t.Error("quiescent collects disagree")
				}
				a.Write("x")
				_, fp3 := a.Collect()
				if fp3 == fp2 {
					t.Error("write did not change the fingerprint")
				}
				return 0
			})
			defer sys.Close()
			if _, err := sys.Run(sim.Solo{PID: 0}, 100_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBufferedFootprint checks the ceil(n/l) location budget of Theorem 6.3.
func TestBufferedFootprint(t *testing.T) {
	for n := 2; n <= 9; n++ {
		for l := 1; l <= 4; l++ {
			want := (n + l - 1) / l
			mem := machine.New(machine.SetBuffers(l), want)
			body := func(p *sim.Proc) int {
				a := NewBuffered(p, 0, l)
				if a.Buffers() != want {
					t.Errorf("n=%d l=%d: Buffers() = %d, want %d", n, l, a.Buffers(), want)
				}
				a.Write(p.ID())
				a.Collect()
				return 0
			}
			sys := sim.NewSystem(mem, make([]int, n), body)
			if _, err := sys.Run(&sim.RoundRobin{}, 1_000_000); err != nil {
				t.Fatal(err)
			}
			if fp := mem.Stats().Footprint(); fp > want {
				t.Errorf("n=%d l=%d: footprint %d exceeds %d", n, l, fp, want)
			}
			sys.Close()
		}
	}
}
