package repro

// The benchmark harness regenerates every experiment of the paper's
// evaluation: each row of Table 1 (the paper's only table) gets a
// BenchmarkT1_* that runs the row's upper-bound protocol to a decision and
// reports the measured space (locations), step count, and value width; the
// concurrent-append scenario of Figure 1 gets BenchmarkF1_HistoryAppend;
// and the two introduction protocols get BenchmarkX*. Ablation benchmarks
// cover the design choices DESIGN.md calls out: bounded vs unbounded
// counters, the Lemma 5.2 blow-up, value-width growth, and the buffer
// capacity sweep.
//
// The paper reports no wall-clock measurements (its Table 1 entries are
// location counts), so the primary "result" here is the locations metric;
// ns/op measures the simulator, not any hardware claim.

import (
	"context"
	"fmt"
	"slices"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/machine"
	"repro/internal/sim"
)

const (
	benchN     = 8
	benchL     = 2
	benchSteps = 50_000_000
)

// benchRow runs one Table 1 row to a decision per iteration and reports the
// space metrics.
func benchRow(b *testing.B, id string, n, l int) {
	b.Helper()
	row, ok := core.RowByID(id, l)
	if !ok {
		b.Fatalf("unknown row %s", id)
	}
	var last *core.Measurement
	for i := 0; i < b.N; i++ {
		m, err := core.MeasureRow(row, n, int64(i+1), benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Check(); err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.ReportMetric(float64(last.Footprint), "locations")
	b.ReportMetric(float64(last.Steps), "mem-steps")
	b.ReportMetric(float64(last.MaxBits), "max-bits")
	if up := last.UpperBound; up != core.Unbounded {
		b.ReportMetric(float64(up), "paper-upper")
	}
	if lo := last.LowerBound; lo != core.Unbounded {
		b.ReportMetric(float64(lo), "paper-lower")
	}
}

// --- Table 1, top to bottom -------------------------------------------------

func BenchmarkT1_01_TASUnbounded(b *testing.B)   { benchRow(b, "T1.1", benchN, benchL) }
func BenchmarkT1_02_BinaryWrites(b *testing.B)   { benchRow(b, "T1.2", benchN, benchL) }
func BenchmarkT1_03_Registers(b *testing.B)      { benchRow(b, "T1.3", benchN, benchL) }
func BenchmarkT1_04_TASReset(b *testing.B)       { benchRow(b, "T1.4", benchN, benchL) }
func BenchmarkT1_05_Swap(b *testing.B)           { benchRow(b, "T1.5", benchN, benchL) }
func BenchmarkT1_07_Increment(b *testing.B)      { benchRow(b, "T1.7", benchN, benchL) }
func BenchmarkT1_08_FetchIncrement(b *testing.B) { benchRow(b, "T1.8", benchN, benchL) }
func BenchmarkT1_09_MaxRegisters(b *testing.B)   { benchRow(b, "T1.9", benchN, benchL) }
func BenchmarkT1_10_CAS(b *testing.B)            { benchRow(b, "T1.10", benchN, benchL) }
func BenchmarkT1_11_SetBit(b *testing.B)         { benchRow(b, "T1.11", benchN, benchL) }
func BenchmarkT1_12_Add(b *testing.B)            { benchRow(b, "T1.12", benchN, benchL) }
func BenchmarkT1_13_Multiply(b *testing.B)       { benchRow(b, "T1.13", benchN, benchL) }
func BenchmarkT1_14_FetchAdd(b *testing.B)       { benchRow(b, "T1.14", benchN, benchL) }
func BenchmarkT1_15_FetchMultiply(b *testing.B)  { benchRow(b, "T1.15", benchN, benchL) }

// BenchmarkT1_06_Buffers sweeps the buffer capacity l, the row's parameter:
// measured locations must track ceil(n/l) with the ceil((n-1)/l) lower bound
// one below at the divisibility boundaries.
func BenchmarkT1_06_Buffers(b *testing.B) {
	for _, l := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			benchRow(b, "T1.6", benchN, l)
		})
	}
}

// BenchmarkT1_MA_MultiAssign runs the buffer protocol on multiple-
// assignment-capable memory (Theorem 7.5's setting): same ceil(n/l) upper
// bound, lower bound halved to ceil((n-1)/2l).
func BenchmarkT1_MA_MultiAssign(b *testing.B) {
	for _, l := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			benchRow(b, "T1.MA", benchN, l)
		})
	}
}

// --- Figure 1: l concurrent appends on one l-buffer history object ----------

// BenchmarkF1_HistoryAppend reproduces the Figure 1 overlap: l appenders
// whose embedded reads all precede all writes, then a reader reconstructing
// the full history. The metric of interest is that reconstruction stays
// correct (checked) while costing two atomic steps per append.
func BenchmarkF1_HistoryAppend(b *testing.B) {
	for _, l := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mem := machine.New(machine.SetBuffers(l), 1)
				bodies := make([]sim.Body, l+1)
				for j := 0; j < l; j++ {
					bodies[j] = func(p *sim.Proc) int {
						history.New(p, 0).Append(p.ID())
						return 0
					}
				}
				var got []history.Entry
				bodies[l] = func(p *sim.Proc) int {
					got = history.New(p, 0).GetHistory()
					return 0
				}
				sys := sim.NewSystemBodies(mem, make([]int, l+1), bodies)
				// Figure 1 schedule: all reads, then all writes, then the read.
				for pid := 0; pid < l; pid++ {
					if _, err := sys.Step(pid); err != nil {
						b.Fatal(err)
					}
				}
				for pid := 0; pid < l; pid++ {
					if _, err := sys.Step(pid); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sys.Step(l); err != nil {
					b.Fatal(err)
				}
				if len(got) != l {
					b.Fatalf("reconstructed %d of %d concurrent appends", len(got), l)
				}
				sys.Close()
			}
			b.ReportMetric(float64(l), "concurrent-appends")
		})
	}
}

// --- Introduction protocols --------------------------------------------------

func benchIntro(b *testing.B, build func(int) *consensus.Protocol) {
	b.Helper()
	n := benchN
	var steps int64
	for i := 0; i < b.N; i++ {
		pr := build(n)
		inputs := make([]int, n)
		for j := range inputs {
			inputs[j] = j % 2
		}
		sys := pr.MustSystem(inputs)
		res, err := sys.Run(sim.NewRandom(int64(i+1)), 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckConsensus(inputs); err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
		sys.Close()
	}
	b.ReportMetric(float64(steps), "mem-steps")
	b.ReportMetric(1, "locations")
	b.ReportMetric(float64(steps)/float64(benchN), "steps-per-proc")
}

// BenchmarkX1_IntroFAA2TAS: wait-free binary consensus from one location
// supporting {fetch-and-add(2), test-and-set} (introduction, example 1).
func BenchmarkX1_IntroFAA2TAS(b *testing.B) { benchIntro(b, consensus.IntroFAA2TAS) }

// BenchmarkX2_IntroDecMul: wait-free binary consensus from one location
// supporting {read, decrement, multiply} (introduction, example 2).
func BenchmarkX2_IntroDecMul(b *testing.B) { benchIntro(b, consensus.IntroDecMul) }

// --- Execution engine -------------------------------------------------------

// benchEngineSteps measures raw steady-state step throughput of one
// execution engine: four processes spinning on shared counters, stepped
// round-robin. This is the microbenchmark behind the step-VM refactor — the
// goroutine engine pays two channel handoffs and a scheduler round trip per
// step, the VM a single coroutine switch.
func benchEngineSteps(b *testing.B, e sim.Engine) {
	b.Helper()
	mem := machine.New(machine.NewInstrSet("bench", machine.OpRead, machine.OpIncrement), 2)
	spin := func(p *sim.Proc) int {
		for {
			p.Apply(0, machine.OpIncrement)
			p.Apply(1, machine.OpRead)
		}
	}
	sys := sim.NewSystem(mem, make([]int, 4), spin, sim.WithEngine(e))
	defer sys.Close()
	sched := &sim.RoundRobin{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(sched.Next(sys)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkEngineSteps_VM(b *testing.B)        { benchEngineSteps(b, sim.EngineVM) }
func BenchmarkEngineSteps_Goroutine(b *testing.B) { benchEngineSteps(b, sim.EngineGoroutine) }

// BenchmarkExplore measures the forkable-configuration refactor on the
// systematic explorer: for a depth-bounded instance, each variant runs one
// full exhaustive exploration per iteration.
//
//   - replay-body: approximates the pre-refactor explorer — coroutine-
//     adapted bodies, every configuration re-executed from a fresh system
//     (the only option before configurations became forkable). It runs on
//     the current adapters, which also pay result recording and
//     fingerprint upkeep; EXPERIMENTS.md additionally records the true
//     baseline measured at the parent commit.
//   - replay: same replay strategy over the explicit forkable steppers.
//   - fork: configurations forked at branch points, no dedup.
//   - fork-dedup: forking plus the canonical seen-state table.
func BenchmarkExplore(b *testing.B) {
	cases := []struct {
		name   string
		build  func(n int) *consensus.Protocol
		inputs []int
		depth  int
	}{
		{"cas3-depth6", consensus.CAS, []int{0, 1, 2}, 6},
		{"maxreg2-depth9", consensus.MaxRegisters, []int{0, 1}, 9},
	}
	for _, tc := range cases {
		bodyFactory := func() (*sim.System, error) {
			pr := tc.build(len(tc.inputs))
			return sim.NewSystem(pr.NewMemory(), tc.inputs, pr.Body), nil
		}
		stepperFactory := func() (*sim.System, error) {
			return tc.build(len(tc.inputs)).NewSystem(tc.inputs)
		}
		variants := []struct {
			name string
			f    explore.Factory
			opts explore.Options
		}{
			{"replay-body", bodyFactory, explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyReplay}},
			{"replay", stepperFactory, explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyReplay}},
			{"fork", stepperFactory, explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyFork}},
			{"fork-dedup", stepperFactory, explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyFork, Dedup: true}},
		}
		for _, v := range variants {
			b.Run(tc.name+"/"+v.name, func(b *testing.B) {
				var rep *explore.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = explore.Exhaustive(context.Background(), v.f, v.opts)
					if err != nil {
						b.Fatal(err)
					}
					if len(rep.Violations) != 0 {
						b.Fatal(rep.Violations[0])
					}
				}
				b.ReportMetric(float64(rep.States), "states")
				b.ReportMetric(float64(rep.Runs), "runs")
			})
		}
	}
}

// BenchmarkExploreParallel records the worker-scaling curve of the parallel
// explorer against the sequential fork baseline on instances large enough
// (thousands to tens of thousands of configurations) for the pool to matter:
// the full 6-process CAS tree and depth-bounded 2- and 3-process
// max-register trees, with and without the sharded seen-state table. The
// "seq" variant is StrategyFork; "p1".."p8" are StrategyParallel at 1/2/4/8
// workers. Reports are verified identical to the sequential baseline every
// iteration, so the benchmark doubles as a determinism check. On a
// single-core host the curve measures pure synchronization overhead (see
// EXPERIMENTS.md); the speedup column needs >= 4 hardware threads.
func BenchmarkExploreParallel(b *testing.B) {
	cases := []struct {
		name   string
		build  func(n int) *consensus.Protocol
		inputs []int
		depth  int
		dedup  bool
	}{
		{"cas6-full", consensus.CAS, []int{0, 1, 2, 3, 4, 5}, 0, false},
		{"maxreg2-depth12", consensus.MaxRegisters, []int{0, 1}, 12, false},
		{"maxreg3-depth8", consensus.MaxRegisters, []int{0, 1, 2}, 8, false},
		{"maxreg3-depth8-dedup", consensus.MaxRegisters, []int{0, 1, 2}, 8, true},
	}
	for _, tc := range cases {
		f := func() (*sim.System, error) {
			return tc.build(len(tc.inputs)).NewSystem(tc.inputs)
		}
		base := explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyFork, Dedup: tc.dedup}
		seqWant, err := explore.Exhaustive(context.Background(), f, base)
		if err != nil {
			b.Fatal(err)
		}
		popts := func(w int) explore.Options {
			return explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyParallel, Workers: w, Dedup: tc.dedup}
		}
		// With dedup the parallel pruning rule (exact (state, depth)) counts
		// differently from the sequential depth-aware rule, so the p*
		// variants pin against the worker-count-invariant parallel reference;
		// DistinctStates must match across everything.
		parWant, err := explore.Exhaustive(context.Background(), f, popts(1))
		if err != nil {
			b.Fatal(err)
		}
		if parWant.DistinctStates != seqWant.DistinctStates {
			b.Fatalf("distinct states diverged: seq %d, parallel %d",
				seqWant.DistinctStates, parWant.DistinctStates)
		}
		variants := []struct {
			name string
			opts explore.Options
			want *explore.Report
		}{
			{"seq", base, seqWant},
			{"p1", popts(1), parWant},
			{"p2", popts(2), parWant},
			{"p4", popts(4), parWant},
			{"p8", popts(8), parWant},
		}
		for _, v := range variants {
			b.Run(tc.name+"/"+v.name, func(b *testing.B) {
				var rep *explore.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = explore.Exhaustive(context.Background(), f, v.opts)
					if err != nil {
						b.Fatal(err)
					}
					if rep.States != v.want.States || rep.Runs != v.want.Runs ||
						rep.DistinctStates != v.want.DistinctStates || len(rep.Violations) != 0 {
						b.Fatalf("report diverged from baseline:\nwant %+v\ngot  %+v", v.want, rep)
					}
				}
				b.ReportMetric(float64(rep.States), "states")
			})
		}
	}
}

// BenchmarkExploreSymmetry measures what the symmetry-reduced seen-state
// key buys on symmetric instances: same exploration, dedup on, keyed exact
// vs keyed up to location/process symmetry. The states metric is the
// configurations actually expanded, orbits the distinct keys — with
// symmetry the orbit count is the state-space quotient the ROADMAP's speed
// axis is after, and the expanded count shrinks with it. Every iteration
// cross-checks that the decided-value set is unchanged by the quotient.
func BenchmarkExploreSymmetry(b *testing.B) {
	cases := []struct {
		name   string
		build  func(n int) *consensus.Protocol
		inputs []int
		depth  int
	}{
		{"maxreg3-depth8", consensus.MaxRegisters, []int{2, 0, 1}, 8},
		{"incbinary3-depth8", consensus.IncrementBinary, []int{1, 0, 1}, 8},
		{"increment4-depth7", consensus.Increment, []int{1, 0, 1, 0}, 7},
		{"writebits3-depth7", consensus.WriteBits, []int{1, 0, 1}, 7},
	}
	for _, tc := range cases {
		f := func() (*sim.System, error) {
			return tc.build(len(tc.inputs)).NewSystem(tc.inputs)
		}
		exact := explore.Options{MaxDepth: tc.depth, Strategy: explore.StrategyFork, Dedup: true}
		want, err := explore.Exhaustive(context.Background(), f, exact)
		if err != nil {
			b.Fatal(err)
		}
		sym := exact
		sym.Symmetry = true
		for _, v := range []struct {
			name string
			opts explore.Options
		}{{"exact", exact}, {"sym", sym}} {
			b.Run(tc.name+"/"+v.name, func(b *testing.B) {
				var rep *explore.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = explore.Exhaustive(context.Background(), f, v.opts)
					if err != nil {
						b.Fatal(err)
					}
					if len(rep.Violations) != 0 {
						b.Fatal(rep.Violations[0])
					}
					if !slices.Equal(rep.DecidedValues, want.DecidedValues) {
						b.Fatalf("decided values %v, want %v", rep.DecidedValues, want.DecidedValues)
					}
				}
				b.ReportMetric(float64(rep.States), "states")
				b.ReportMetric(float64(rep.DistinctStates), "orbits")
			})
		}
	}
}

// BenchmarkSolveBatch runs a 64-seed sweep of the two-max-register protocol
// per iteration, serially and on the parallel batch runner, so the speedup
// of spreading independent schedules across cores is directly visible.
func BenchmarkSolveBatch(b *testing.B) {
	inputs := []int{3, 1, 4, 1, 2, 0, 6, 5}
	specs := make([]BatchSpec, 64)
	for i := range specs {
		specs[i] = BatchSpec{Row: "T1.9", Inputs: inputs, Seed: int64(i + 1)}
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = 0
				for _, bo := range SolveBatch(specs, tc.workers) {
					if bo.Err != nil {
						b.Fatal(bo.Err)
					}
					steps += bo.Outcome.Steps
				}
			}
			b.ReportMetric(float64(steps*int64(b.N))/b.Elapsed().Seconds(), "steps/sec")
			b.ReportMetric(float64(len(specs)), "runs")
		})
	}
}

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblation_ValueWidth measures the bit-width growth of the
// single-location arithmetic rows — the location-size concern the paper's
// conclusion raises: multiply grows without bound, add is capped by the
// base-3n digit discipline.
func BenchmarkAblation_ValueWidth(b *testing.B) {
	for _, tc := range []struct {
		name string
		id   string
	}{
		{"multiply-unbounded", "T1.13"},
		{"add-bounded", "T1.12"},
		{"set-bit", "T1.11"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			row, _ := core.RowByID(tc.id, 1)
			var bits float64
			for i := 0; i < b.N; i++ {
				m, err := core.MeasureRow(row, benchN, int64(i+1), benchSteps)
				if err != nil {
					b.Fatal(err)
				}
				bits = float64(m.MaxBits)
			}
			b.ReportMetric(bits, "max-bits")
		})
	}
}

// BenchmarkAblation_Lemma52 sweeps n for the increment row, exhibiting the
// (c+2)ceil(log2 n)-2 location blow-up of the bit-by-bit agreement.
func BenchmarkAblation_Lemma52(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRow(b, "T1.7", n, 1)
		})
	}
}

// BenchmarkAblation_RegistersVsBuffers contrasts SP over the same racing
// algorithm as the substrate changes: n registers vs ceil(n/l) buffers.
func BenchmarkAblation_RegistersVsBuffers(b *testing.B) {
	b.Run("registers", func(b *testing.B) { benchRow(b, "T1.3", benchN, 1) })
	b.Run("buffers-l4", func(b *testing.B) { benchRow(b, "T1.6", benchN, 4) })
}

// BenchmarkAblation_SwapScaling sweeps n for Algorithm 1's n-1 locations.
func BenchmarkAblation_SwapScaling(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRow(b, "T1.5", n, 1)
		})
	}
}

// BenchmarkCompiledSolveSweep measures the tentpole amortization of the
// compiled-handle API: a 100-seed sweep through one compiled handle (each
// run forks the pristine snapshot) against the same sweep with per-run
// construction (row resolution + protocol build + fresh memory and
// steppers per seed, the pre-handle path). Rows: the two-max-register
// protocol and the one-location add-counter row, both natively forkable.
func BenchmarkCompiledSolveSweep(b *testing.B) {
	const sweep = 100
	inputs := []int{3, 1, 4, 1, 2, 0, 6, 7}
	ctx := context.Background()
	for _, rowID := range []string{"T1.9", "T1.12"} {
		b.Run(rowID+"/compiled", func(b *testing.B) {
			p, err := Compile(rowID, len(inputs))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for seed := int64(1); seed <= sweep; seed++ {
					if _, err := p.Solve(ctx, inputs, Seed(seed)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sweep), "ns/run")
		})
		b.Run(rowID+"/fresh", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for seed := int64(1); seed <= sweep; seed++ {
					// The pre-handle per-run path: resolve the row, build
					// the protocol, construct a fresh system.
					row, ok := core.RowByID(rowID, 2)
					if !ok {
						b.Fatal("unknown row")
					}
					sys, err := row.Build(len(inputs)).NewSystem(inputs)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sys.Run(sim.NewRandom(seed), 50_000_000)
					if err != nil {
						sys.Close()
						b.Fatal(err)
					}
					if _, ok := res.AgreedValue(); !ok {
						sys.Close()
						b.Fatal("no decision")
					}
					sys.Close()
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sweep), "ns/run")
		})
	}
}
