package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the ledger commit: a batch is committed over the
// ceil(n/l)-location buffered memory and the atomic publish lands in the
// audit buffer.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"consensus uses 3 2-buffer locations",
		"committed: batch-",
		"audit: replica",
		"atomic multiple assignments",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
