package main

import (
	"context"
	"strings"
	"testing"
)

// TestRun smoke-tests the ledger commit: a batch is committed over the
// ceil(n/l)-location buffered memory and the atomic publish lands in the
// audit buffer.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"consensus uses 3 2-buffer locations",
		"paper bounds for this instruction set at n=5: [1, 3]",
		"committed: batch-",
		"audit: replica",
		"atomic multiple assignments",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
