// Replicated-ledger commit over l-buffer memory.
//
// Five replicas of a ledger each receive a candidate batch of transactions
// and must commit the same batch. The shared medium is a memory of
// 2-buffers — each location remembers the two most recent writes, the
// Section 6 instruction set B_l — so ceil(5/2) = 3 locations suffice
// (Theorem 6.3), instead of the 5 plain registers would need.
//
// The example also exercises the Section 7 extension: after the batch is
// chosen, a replica publishes the decision to both an index location and an
// audit location atomically with one multiple assignment (the paper's
// "simple transaction").
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/consensus"
	"repro/internal/machine"
	"repro/internal/sim"
)

const (
	replicas  = 5
	bufferCap = 2
)

func run(ctx context.Context, w io.Writer) error {
	batches := []string{
		"batch-a: 12 transfers",
		"batch-b: 7 transfers",
		"batch-c: 31 transfers",
		"batch-d: 2 transfers",
		"batch-e: 19 transfers",
	}
	// Each replica proposes the batch it received (its own index).
	proposals := make([]int, replicas)
	for i := range proposals {
		proposals[i] = i
	}

	pr := consensus.BufferedMultiAssign(replicas, bufferCap)
	// Two extra locations for the atomic publish step: a commit index and
	// an audit log, written together by one multiple assignment.
	consensusLocs := pr.Locations
	pr.Locations += 2
	indexLoc, auditLoc := consensusLocs, consensusLocs+1

	decided := make([]int, replicas)
	inner := pr.Body
	pr.SetBody(func(p *sim.Proc) int {
		batch := inner(p)
		decided[p.ID()] = batch
		// Atomically publish the decision to the index and the audit log —
		// a simple transaction in the paper's Section 7 sense.
		p.MultiAssign(
			machine.Assignment{Loc: indexLoc, Op: machine.OpBufferWrite,
				Args: []machine.Value{batch}},
			machine.Assignment{Loc: auditLoc, Op: machine.OpBufferWrite,
				Args: []machine.Value{fmt.Sprintf("replica %d commits %d", p.ID(), batch)}},
		)
		return batch
	})

	fmt.Fprintf(w, "committing one of %d batches across %d replicas over %s\n",
		len(batches), replicas, pr.Set)
	fmt.Fprintf(w, "consensus uses %d 2-buffer locations (ceil(n/l); plain registers would need %d)\n",
		consensusLocs, replicas)

	// The compiled handle for the same row documents why: the paper bounds
	// SP for l-buffers with multiple assignment between ceil((n-1)/2l) and
	// ceil(n/l).
	handle, err := repro.Compile("T1.MA", replicas, repro.BufferCap(bufferCap))
	if err != nil {
		return err
	}
	lo, up := handle.Bounds()
	fmt.Fprintf(w, "paper bounds for this instruction set at n=%d: [%d, %d]\n", replicas, lo, up)

	sys, err := pr.NewSystem(proposals)
	if err != nil {
		return err
	}
	defer sys.Close()
	res, err := sys.RunContext(ctx, sim.NewRandom(99), 10_000_000)
	if err != nil {
		return err
	}
	if err := res.CheckConsensus(proposals); err != nil {
		return fmt.Errorf("ledger diverged: %w", err)
	}
	batch, _ := res.AgreedValue()
	fmt.Fprintf(w, "committed: %s\n", batches[batch])

	// The audit location holds the last two publishes (it is a 2-buffer).
	for _, v := range sys.Mem().PeekBuffer(auditLoc) {
		fmt.Fprintf(w, "audit: %v\n", v)
	}
	st := sys.Mem().Stats()
	fmt.Fprintf(w, "%d locations touched, %d steps, %d atomic multiple assignments\n",
		st.Footprint(), st.Steps, st.MultiAssigns)
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(context.Background(), os.Stdout); err != nil {
		log.Fatal(err)
	}
}
