// A shared task queue in ONE memory location.
//
// The paper's conclusion observes that a history object implements any
// sequentially defined object, and Lemma 6.1 squeezes a history object for
// l updaters into a single l-buffer. This example puts both to work: four
// workers share a linearizable FIFO task queue — and a repeated-consensus
// control object — each living in one memory location of a 4-buffer memory.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/machine"
	"repro/internal/objects"
	"repro/internal/sim"
)

const workers = 4

func run(ctx context.Context, w io.Writer) error {
	mem := machine.New(machine.SetBuffers(workers), 2)
	const queueLoc, controlLoc = 0, 1

	processed := make([][]any, workers)
	body := func(p *sim.Proc) int {
		q := objects.New(p, queueLoc, objects.Queue{})
		ctl := objects.New(p, controlLoc, objects.RepeatedConsensus{})

		// Everyone proposes itself as the batch coordinator for epoch 0;
		// the control object's slot-0 winner is the agreed coordinator.
		coord := ctl.Update(objects.ProposeOp{Slot: 0, Val: p.ID()}).(int)

		// The coordinator seeds the queue, then marks epoch slot 1 "seeded";
		// everyone drains until the queue is empty after the seeding mark.
		if p.ID() == coord {
			for i := 0; i < 2*workers; i++ {
				q.Update(objects.QueueOp{Enq: fmt.Sprintf("task-%d", i)})
			}
			ctl.Update(objects.ProposeOp{Slot: 1, Val: 1})
		}
		for {
			got := q.Update(objects.QueueOp{})
			if got == (objects.DequeueEmpty{}) {
				if _, seeded := (objects.RepeatedConsensus{}).DecidedIn(ctl.Read(), 1); seeded {
					break
				}
				continue
			}
			processed[p.ID()] = append(processed[p.ID()], got)
		}
		return coord
	}

	sys := sim.NewSystem(mem, make([]int, workers), body)
	defer sys.Close()
	res, err := sys.RunContext(ctx, sim.NewRandom(17), 5_000_000)
	if err != nil {
		return err
	}
	coord, _ := res.AgreedValue()
	fmt.Fprintf(w, "agreed coordinator: worker %d\n", coord)

	// Every task must be processed exactly once, across all workers.
	seen := map[any]bool{}
	for wid, tasks := range processed {
		fmt.Fprintf(w, "worker %d processed %d tasks: %v\n", wid, len(tasks), tasks)
		for _, task := range tasks {
			if seen[task] {
				return fmt.Errorf("task %v processed twice", task)
			}
			seen[task] = true
		}
	}
	fmt.Fprintf(w, "%d distinct tasks processed, queue + control in %d memory locations\n",
		len(seen), mem.Stats().Footprint())
	if len(seen) != 2*workers {
		return fmt.Errorf("processed %d distinct tasks, want %d", len(seen), 2*workers)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(context.Background(), os.Stdout); err != nil {
		log.Fatal(err)
	}
}
