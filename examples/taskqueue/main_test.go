package main

import (
	"context"
	"strings"
	"testing"
)

// TestRun smoke-tests the one-location task queue: all eight tasks must be
// processed exactly once over the two-location memory.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"agreed coordinator: worker",
		"8 distinct tasks processed, queue + control in 2 memory locations",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
