// Quickstart: eight processes with conflicting proposals agree using two
// max-registers (Table 1 row T1.9, Theorem 4.2) — the tight minimum for the
// {read-max, write-max} instruction set.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro"
)

func run(w io.Writer) error {
	// One proposal per process; values must lie in [0, n).
	proposals := []int{3, 1, 4, 1, 5, 2, 6, 0}

	out, err := repro.Solve("T1.9", proposals, repro.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "proposals: %v\n", proposals)
	fmt.Fprintf(w, "agreed on %d using %d memory locations in %d steps\n",
		out.Value, out.Footprint, out.Steps)

	// The hierarchy tells us this is optimal for max-registers:
	lo, up, err := repro.SpaceBounds("T1.9", len(proposals), 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "paper bounds for this instruction set: lower=%d upper=%d\n", lo, up)

	// The same agreement over plain registers needs n locations...
	reg, err := repro.Solve("T1.3", proposals, repro.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plain registers: agreed on %d using %d locations (n=%d is tight)\n",
		reg.Value, reg.Footprint, len(proposals))

	// ...while a single fetch-and-add word suffices.
	faa, err := repro.Solve("T1.14", proposals, repro.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "one fetch-and-add word: agreed on %d using %d location\n",
		faa.Value, faa.Footprint)
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
