// Quickstart: eight processes with conflicting proposals agree using two
// max-registers (Table 1 row T1.9, Theorem 4.2) — the tight minimum for the
// {read-max, write-max} instruction set.
//
// The example compiles each instruction set once into a repro.Protocol
// handle and runs every agreement through the handle's verbs: Solve for a
// seeded run, Bounds for the paper's space bounds, and a SolveSeq seed
// stream showing that the agreement is schedule-independent.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
)

func run(ctx context.Context, w io.Writer) error {
	// One proposal per process; values must lie in [0, n).
	proposals := []int{3, 1, 4, 1, 5, 2, 6, 0}

	maxreg, err := repro.Compile("T1.9", len(proposals))
	if err != nil {
		return err
	}
	out, err := maxreg.Solve(ctx, proposals, repro.Seed(42))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "proposals: %v\n", proposals)
	fmt.Fprintf(w, "agreed on %d using %d memory locations in %d steps\n",
		out.Value, out.Footprint, out.Steps)

	// The hierarchy tells us this is optimal for max-registers:
	lo, up := maxreg.Bounds()
	fmt.Fprintf(w, "paper bounds for this instruction set: lower=%d upper=%d\n", lo, up)

	// The same agreement over plain registers needs n locations...
	registers, err := repro.Compile("T1.3", len(proposals))
	if err != nil {
		return err
	}
	reg, err := registers.Solve(ctx, proposals, repro.Seed(42))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plain registers: agreed on %d using %d locations (n=%d is tight)\n",
		reg.Value, reg.Footprint, len(proposals))

	// ...while a single fetch-and-add word suffices.
	faaHandle, err := repro.Compile("T1.14", len(proposals))
	if err != nil {
		return err
	}
	faa, err := faaHandle.Solve(ctx, proposals, repro.Seed(42))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "one fetch-and-add word: agreed on %d using %d location\n",
		faa.Value, faa.Footprint)

	// A compiled handle amortizes setup across runs: stream a short seed
	// sweep through it — every schedule ends in a valid agreement over the
	// same two locations.
	specs := make([]repro.RunSpec, 16)
	for i := range specs {
		specs[i] = repro.RunSpec{Inputs: proposals, Seed: int64(i + 1)}
	}
	sweepLocs := 0
	for _, r := range maxreg.SolveSeq(ctx, specs) {
		if r.Err != nil {
			return r.Err
		}
		if r.Outcome.Footprint > sweepLocs {
			sweepLocs = r.Outcome.Footprint
		}
	}
	fmt.Fprintf(w, "16-seed sweep: every schedule agreed within %d locations\n", sweepLocs)
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(context.Background(), os.Stdout); err != nil {
		log.Fatal(err)
	}
}
