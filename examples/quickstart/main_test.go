package main

import (
	"context"
	"strings"
	"testing"
)

// TestRun smoke-tests the quickstart end to end: it must succeed and report
// the tight two-max-register agreement.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"using 2 memory locations",
		"lower=2 upper=2",
		"using 8 locations",
		"using 1 location",
		"16-seed sweep: every schedule agreed within 2 locations",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
