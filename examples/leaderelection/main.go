// Leader election over a single fetch-and-add word.
//
// A pool of workers must elect exactly one leader after a coordinator
// crash. Each worker proposes itself; the racing-counters protocol over one
// {fetch-and-add} location (Table 1 row T1.14, Theorem 3.3) makes them
// agree on a single worker id — obstruction-free, tolerating any number of
// worker crashes, with one machine word of shared state.
//
// The example drives the protocol directly through the simulator so it can
// inject crashes and an unfair scheduler, the conditions a real election
// faces.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/consensus"
	"repro/internal/sim"
)

func run(w io.Writer) error {
	const workers = 6

	// Every worker proposes its own id as leader.
	proposals := make([]int, workers)
	for i := range proposals {
		proposals[i] = i
	}

	pr := consensus.FetchAdd(workers)
	fmt.Fprintf(w, "electing a leader among %d workers over %s (1 location)\n",
		workers, pr.Set)

	sys, err := pr.NewSystem(proposals)
	if err != nil {
		return err
	}
	defer sys.Close()

	// Hostile conditions: random scheduling and a 2% per-step chance that
	// some worker crashes (obstruction-free protocols tolerate any number
	// of crash failures).
	sched := sim.NewRandomCrash(sim.NewRandom(2024), 0.02, 7)
	res, err := sys.Run(sched, 10_000_000)
	if err != nil {
		return err
	}
	if err := res.CheckConsensus(proposals); err != nil {
		return fmt.Errorf("election unsafe: %w", err)
	}

	leader, ok := res.AgreedValue()
	if !ok {
		return fmt.Errorf("no survivor decided (raise the step budget)")
	}
	fmt.Fprintf(w, "crashed workers: %v\n", res.Crashed)
	fmt.Fprintf(w, "elected leader: worker %d\n", leader)
	for pid, d := range res.Decisions {
		fmt.Fprintf(w, "  worker %d acknowledges leader %d\n", pid, d)
	}
	st := sys.Mem().Stats()
	fmt.Fprintf(w, "shared state: %d location, %d atomic steps, widest value %d bits\n",
		st.Footprint(), st.Steps, st.MaxBits)
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
