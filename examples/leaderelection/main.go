// Leader election over a single fetch-and-add word.
//
// A pool of workers must elect exactly one leader after a coordinator
// crash. Each worker proposes itself; the racing-counters protocol over one
// {fetch-and-add} location (Table 1 row T1.14, Theorem 3.3) makes them
// agree on a single worker id — obstruction-free, tolerating any number of
// worker crashes, with one machine word of shared state.
//
// The election itself is driven through the simulator so it can inject
// crashes and an unfair scheduler, the conditions a real election faces.
// Before trusting the protocol with that, the example compiles it into a
// repro.Protocol handle and certifies it: Verify model-checks every
// interleaving of a schedule envelope, and Bounds confirms the one-word
// space optimum.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/consensus"
	"repro/internal/sim"
)

func run(ctx context.Context, w io.Writer) error {
	const workers = 6

	// Every worker proposes its own id as leader.
	proposals := make([]int, workers)
	for i := range proposals {
		proposals[i] = i
	}

	// Certify the protocol before deploying it: exhaustively model-check
	// agreement and validity over every interleaving of the first steps.
	handle, err := repro.Compile("T1.14", workers)
	if err != nil {
		return err
	}
	lo, up := handle.Bounds()
	fmt.Fprintf(w, "electing a leader among %d workers over 1 fetch-and-add word (paper bounds [%d, %d])\n",
		workers, lo, up)
	cert, err := handle.Verify(ctx, proposals, 5)
	if err != nil {
		return err
	}
	if len(cert.Violations) > 0 {
		return fmt.Errorf("certification failed: %v", cert.Violations)
	}
	fmt.Fprintf(w, "certified safe over %d configurations (%d distinct states) to depth 5\n",
		cert.States, cert.DistinctStates)

	pr := consensus.FetchAdd(workers)
	sys, err := pr.NewSystem(proposals)
	if err != nil {
		return err
	}
	defer sys.Close()

	// Hostile conditions: random scheduling and a 2% per-step chance that
	// some worker crashes (obstruction-free protocols tolerate any number
	// of crash failures).
	sched := sim.NewRandomCrash(sim.NewRandom(2024), 0.02, 7)
	res, err := sys.RunContext(ctx, sched, 10_000_000)
	if err != nil {
		return err
	}
	if err := res.CheckConsensus(proposals); err != nil {
		return fmt.Errorf("election unsafe: %w", err)
	}

	leader, ok := res.AgreedValue()
	if !ok {
		return fmt.Errorf("no survivor decided (raise the step budget)")
	}
	fmt.Fprintf(w, "crashed workers: %v\n", res.Crashed)
	fmt.Fprintf(w, "elected leader: worker %d\n", leader)
	for pid, d := range res.Decisions {
		fmt.Fprintf(w, "  worker %d acknowledges leader %d\n", pid, d)
	}
	st := sys.Mem().Stats()
	fmt.Fprintf(w, "shared state: %d location, %d atomic steps, widest value %d bits\n",
		st.Footprint(), st.Steps, st.MaxBits)
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(context.Background(), os.Stdout); err != nil {
		log.Fatal(err)
	}
}
