package main

import (
	"context"
	"strings"
	"testing"
)

// TestRun smoke-tests the election: the handle-level certification must
// pass and exactly one leader emerges over one fetch-and-add word, under
// crash injection.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"certified safe over",
		"elected leader: worker",
		"shared state: 1 location",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
