package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the election: one leader over one fetch-and-add word,
// under crash injection.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"elected leader: worker",
		"shared state: 1 location",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
