package main

import (
	"context"
	"strings"
	"testing"
)

// TestRun smoke-tests anonymous agreement across the scheduling scenarios
// plus the Lemma 8.7 solo guarantee (checked through the handle's step
// profile and a direct solo run).
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"7 anonymous sensors agreeing over 6 swap locations",
		"fair round-robin",
		"random with crashes",
		"solo sensor decides in",
		"solo sensor 3 decided its own reading 6",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
