// Anonymous agreement with swap: Algorithm 1 of the paper (Theorem 8.8).
//
// A fleet of identical, anonymous sensors (no ids in the algorithm's logic)
// must agree on which of n candidate readings to report, over n-1 locations
// supporting read and swap. The example compiles the row once into a
// repro.Protocol handle, runs the paper's Algorithm 1 under increasingly
// hostile schedules — fair, unfair, and crash-ridden (the latter two driven
// through the simulator directly, which the public API deliberately keeps
// out of scope) — and demonstrates the Lemma 8.7 guarantee through the
// handle's step profiler: a sensor left alone decides within 3n-2 scans.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/consensus"
	"repro/internal/sim"
)

func run(ctx context.Context, w io.Writer) error {
	const sensors = 7
	readings := []int{4, 4, 2, 6, 4, 0, 2} // candidate reading ids, one per sensor

	fmt.Fprintf(w, "%d anonymous sensors agreeing over %d swap locations\n",
		sensors, sensors-1)

	// The public handle drives the benign scenarios: Table 1 row T1.5 is
	// {read, swap(x)} with the tight n-1 upper bound.
	p, err := repro.Compile("T1.5", sensors)
	if err != nil {
		return err
	}
	out, err := p.Solve(ctx, readings, repro.Seed(5))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-20s -> reading %d (steps %d, locations %d)\n",
		"random", out.Value, out.Steps, out.Footprint)

	// Hostile scenarios need scheduler control the handle does not expose:
	// drive the same protocol through the simulator.
	scenarios := []struct {
		name  string
		sched func() sim.Scheduler
	}{
		{"fair round-robin", func() sim.Scheduler { return &sim.RoundRobin{} }},
		{"random with crashes", func() sim.Scheduler {
			return sim.NewRandomCrash(sim.NewRandom(5), 0.01, 11)
		}},
	}
	for _, sc := range scenarios {
		pr := consensus.Swap(sensors)
		sys, err := pr.NewSystem(readings)
		if err != nil {
			return err
		}
		res, err := sys.RunContext(ctx, sc.sched(), 10_000_000)
		if err != nil {
			sys.Close()
			return err
		}
		if err := res.CheckConsensus(readings); err != nil {
			sys.Close()
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		v, _ := res.AgreedValue()
		fmt.Fprintf(w, "  %-20s -> reading %d (steps %d, crashed %v)\n",
			sc.name, v, res.Steps, res.Crashed)
		sys.Close()
	}

	// Lemma 8.7 via the handle's step profiler: the solo column is the
	// number of steps an unobstructed sensor needs, bounded by 3n-2 scans.
	// A scan costs at most 2(n-1) steps (a read and possibly a swap per
	// location), so solo steps stay within (3n-2)·2(n-1).
	prof, err := p.Steps(ctx)
	if err != nil {
		return err
	}
	maxSolo := int64((3*sensors - 2) * 2 * (sensors - 1))
	fmt.Fprintf(w, "solo sensor decides in %d steps (Lemma 8.7 bound: %d scans, ≤%d steps)\n",
		prof.Solo, 3*sensors-2, maxSolo)
	if prof.Solo > maxSolo {
		return fmt.Errorf("solo run took %d steps, above the Lemma 8.7 bound %d", prof.Solo, maxSolo)
	}

	// The original narrative run: sensor 3 alone must decide its own
	// reading.
	pr := consensus.Swap(sensors)
	sys, err := pr.NewSystem(readings)
	if err != nil {
		return err
	}
	defer sys.Close()
	res, err := sys.RunContext(ctx, sim.Solo{PID: 3}, 10_000_000)
	if err != nil {
		return err
	}
	d := res.Decisions[3]
	fmt.Fprintf(w, "solo sensor 3 decided its own reading %d in %d steps\n", d, res.Steps)
	if d != readings[3] {
		return fmt.Errorf("solo sensor decided %d, want its own reading %d", d, readings[3])
	}
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(context.Background(), os.Stdout); err != nil {
		log.Fatal(err)
	}
}
