// Anonymous agreement with swap: Algorithm 1 of the paper (Theorem 8.8).
//
// A fleet of identical, anonymous sensors (no ids in the algorithm's logic)
// must agree on which of n candidate readings to report, over n-1 locations
// supporting read and swap. The example runs the paper's Algorithm 1 under
// increasingly hostile schedules — fair, unfair, and crash-ridden — and
// also demonstrates the Lemma 8.7 guarantee: a sensor left alone decides
// within 3n-2 scans.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/consensus"
	"repro/internal/sim"
)

func run(w io.Writer) error {
	const sensors = 7
	readings := []int{4, 4, 2, 6, 4, 0, 2} // candidate reading ids, one per sensor

	fmt.Fprintf(w, "%d anonymous sensors agreeing over %d swap locations\n",
		sensors, sensors-1)

	scenarios := []struct {
		name  string
		sched func() sim.Scheduler
	}{
		{"fair round-robin", func() sim.Scheduler { return &sim.RoundRobin{} }},
		{"random", func() sim.Scheduler { return sim.NewRandom(5) }},
		{"random with crashes", func() sim.Scheduler {
			return sim.NewRandomCrash(sim.NewRandom(5), 0.01, 11)
		}},
	}
	for _, sc := range scenarios {
		pr := consensus.Swap(sensors)
		sys, err := pr.NewSystem(readings)
		if err != nil {
			return err
		}
		res, err := sys.Run(sc.sched(), 10_000_000)
		if err != nil {
			sys.Close()
			return err
		}
		if err := res.CheckConsensus(readings); err != nil {
			sys.Close()
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		v, _ := res.AgreedValue()
		fmt.Fprintf(w, "  %-20s -> reading %d (steps %d, crashed %v)\n",
			sc.name, v, res.Steps, res.Crashed)
		sys.Close()
	}

	// Lemma 8.7: a solo sensor decides after at most 3n-2 scans.
	pr := consensus.Swap(sensors)
	sys, err := pr.NewSystem(readings)
	if err != nil {
		return err
	}
	defer sys.Close()
	res, err := sys.Run(sim.Solo{PID: 3}, 10_000_000)
	if err != nil {
		return err
	}
	d := res.Decisions[3]
	fmt.Fprintf(w, "solo sensor 3 decided its own reading %d in %d steps (Lemma 8.7 bound: %d scans)\n",
		d, res.Steps, 3*sensors-2)
	if d != readings[3] {
		return fmt.Errorf("solo sensor decided %d, want its own reading %d", d, readings[3])
	}
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
