package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// Five processes agree using the tight two-max-register protocol of
// Theorem 4.2 (Table 1 row T1.9): compile the row once, then run it.
func ExampleCompile() {
	p, err := repro.Compile("T1.9", 5)
	if err != nil {
		panic(err)
	}
	out, err := p.Solve(context.Background(), []int{3, 1, 4, 1, 2}, repro.Seed(7))
	if err != nil {
		panic(err)
	}
	fmt.Println("locations used:", out.Footprint)
	// Output: locations used: 2
}

// The buffer row's space scales as ceil(n/l): six processes fit in two
// 3-buffers. Buffer capacity is part of the row's identity, so it is a
// compile-time option.
func ExampleProtocol_Solve() {
	p, err := repro.Compile("T1.6", 6, repro.BufferCap(3))
	if err != nil {
		panic(err)
	}
	out, err := p.Solve(context.Background(), []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("locations used:", out.Footprint)
	// Output: locations used: 2
}

// Verify model-checks a compiled protocol over every interleaving of a
// schedule envelope — here the single-location wait-free CAS row, explored
// to completion.
func ExampleProtocol_Verify() {
	p, err := repro.Compile("T1.10", 3)
	if err != nil {
		panic(err)
	}
	rep, err := p.Verify(context.Background(), []int{0, 1, 2}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(rep.Violations))
	fmt.Println("decided values:", rep.DecidedValues)
	// Output:
	// violations: 0
	// decided values: [0 1 2]
}

// A compiled handle sweeps many schedules in parallel; each spec's seed
// makes the run reproducible.
func ExampleProtocol_SolveBatch() {
	p, err := repro.Compile("T1.14", 4)
	if err != nil {
		panic(err)
	}
	specs := []repro.RunSpec{
		{Inputs: []int{3, 0, 2, 1}, Seed: 1},
		{Inputs: []int{3, 0, 2, 1}, Seed: 2},
	}
	for _, r := range p.SolveBatch(context.Background(), specs) {
		if r.Err != nil {
			panic(r.Err)
		}
		fmt.Println("locations used:", r.Outcome.Footprint)
	}
	// Output:
	// locations used: 1
	// locations used: 1
}

// Bounds evaluates the paper's bound formulas without running anything.
func ExampleProtocol_Bounds() {
	p, err := repro.Compile("T1.6", 7, repro.BufferCap(2))
	if err != nil {
		panic(err)
	}
	lo, up := p.Bounds()
	fmt.Printf("SP bounds for 7 processes over 2-buffers: [%d, %d]\n", lo, up)
	// Output: SP bounds for 7 processes over 2-buffers: [3, 4]
}

// Hierarchy exposes Table 1 as data.
func ExampleHierarchy() {
	for _, row := range repro.Hierarchy(2)[:3] {
		fmt.Println(row.ID, row.Sets)
	}
	// Output:
	// T1.1 {read, test-and-set}, {read, write(1)}
	// T1.2 {read, write(1), write(0)}
	// T1.3 {read, write(x)}
}
