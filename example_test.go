package repro_test

import (
	"fmt"

	"repro"
)

// Five processes agree using the tight two-max-register protocol of
// Theorem 4.2 (Table 1 row T1.9).
func ExampleSolve() {
	out, err := repro.Solve("T1.9", []int{3, 1, 4, 1, 2}, repro.WithSeed(7))
	if err != nil {
		panic(err)
	}
	fmt.Println("locations used:", out.Footprint)
	// Output: locations used: 2
}

// The buffer row's space scales as ceil(n/l): six processes fit in two
// 3-buffers.
func ExampleSolve_buffers() {
	out, err := repro.Solve("T1.6", []int{0, 1, 2, 3, 4, 5}, repro.WithBufferCap(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("locations used:", out.Footprint)
	// Output: locations used: 2
}

// SpaceBounds evaluates the paper's bound formulas without running anything.
func ExampleSpaceBounds() {
	lo, up, err := repro.SpaceBounds("T1.6", 7, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SP bounds for 7 processes over 2-buffers: [%d, %d]\n", lo, up)
	// Output: SP bounds for 7 processes over 2-buffers: [3, 4]
}

// Hierarchy exposes Table 1 as data.
func ExampleHierarchy() {
	for _, row := range repro.Hierarchy(2)[:3] {
		fmt.Println(row.ID, row.Sets)
	}
	// Output:
	// T1.1 {read, test-and-set}, {read, write(1)}
	// T1.2 {read, write(1), write(0)}
	// T1.3 {read, write(x)}
}
