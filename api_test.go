package repro

// TestAPIGolden pins the package's exported surface to api.txt: any change
// to the public API — a new verb, a changed signature, a removed option —
// fails this test until api.txt is deliberately regenerated with
//
//	go test -run TestAPIGolden -update-api .
//
// which makes public-surface changes explicit in review instead of
// incidental.

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite api.txt with the current exported surface")

func TestAPIGolden(t *testing.T) {
	got := renderAPI(t)
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestAPIGolden -update-api .`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exported API surface changed; if intentional, run `go test -run TestAPIGolden -update-api .`\n--- api.txt\n+++ current\n%s", diffLines(string(want), got))
	}
}

// renderAPI renders one sorted line per exported symbol of the root
// package: functions and methods with their signatures, types with their
// exported fields and methods, consts and vars.
func renderAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["repro"]
	if !ok {
		t.Fatalf("package repro not found in %v", pkgs)
	}
	render := func(n any) string {
		var b bytes.Buffer
		if err := printer.Fprint(&b, fset, n); err != nil {
			t.Fatal(err)
		}
		return strings.Join(strings.Fields(b.String()), " ")
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				cp := *d
				cp.Body, cp.Doc = nil, nil
				lines = append(lines, render(&cp))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, typeLines(s, render)...)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							kw := "var"
							if d.Tok == token.CONST {
								kw = "const"
							}
							lines = append(lines, kw+" "+n.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedRecv reports whether a method's receiver type is exported (or the
// decl is a plain function).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	base := d.Recv.List[0].Type
	if se, ok := base.(*ast.StarExpr); ok {
		base = se.X
	}
	id, ok := base.(*ast.Ident)
	return !ok || id.IsExported()
}

// typeLines renders a type declaration: the head line plus one line per
// exported struct field or interface method, keeping unexported internals
// out of the golden surface.
func typeLines(s *ast.TypeSpec, render func(any) string) []string {
	name := s.Name.Name
	if s.Assign.IsValid() {
		return []string{"type " + name + " = " + render(s.Type)}
	}
	switch tt := s.Type.(type) {
	case *ast.StructType:
		lines := []string{"type " + name + " struct"}
		for _, f := range tt.Fields.List {
			for _, fn := range f.Names {
				if fn.IsExported() {
					lines = append(lines, "type "+name+" struct: "+fn.Name+" "+render(f.Type))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{"type " + name + " interface"}
		for _, m := range tt.Methods.List {
			if len(m.Names) == 0 {
				// Embedded interface.
				lines = append(lines, "type "+name+" interface: "+render(m.Type))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					lines = append(lines, "type "+name+" interface: "+mn.Name+" "+render(m.Type))
				}
			}
		}
		return lines
	default:
		return []string{"type " + name + " " + render(s.Type)}
	}
}

// diffLines renders a minimal line diff for the failure message.
func diffLines(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	return b.String()
}
