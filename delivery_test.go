package repro

import (
	"context"
	"errors"
	"slices"
	"sync/atomic"
	"testing"
)

// TestQSCResilienceSweep is the f-resilience row beyond Table 1: the MP.QSC
// quorum protocol at n=3, t=2 verified exhaustively at f=0 (honest run
// decides), f=1 (one silent process — the tolerated bound — still decides),
// and f=2 (past the bound — no quorum can form, so nothing decides, but
// safety holds over the whole envelope).
func TestQSCResilienceSweep(t *testing.T) {
	cases := []struct {
		name        string
		copts       []CompileOption
		inputs      []int
		depth       int
		wantDecided []int
	}{
		// Depth 16 is the shallowest envelope containing a full two-phase
		// decision for three processes; with one process silent every
		// broadcast still pays its full n-1 sends, so the two-party
		// decision completes at depth 32.
		{"f0", nil, []int{1, 0, 1}, 16, []int{1}},
		{"f1-crash-f", []CompileOption{WithScenario("crash-f")}, []int{2, 0, 1}, 32, []int{0}},
		{"f2-crash-beyond-f", []CompileOption{WithScenario("crash-beyond-f")}, []int{2, 0, 1}, 32, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := Compile("MP.QSC", 3, tc.copts...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.Verify(context.Background(), tc.inputs, tc.depth, Workers(0), WithSymmetry())
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("safety violated: %v", rep.Violations)
			}
			if !slices.Equal(rep.DecidedValues, tc.wantDecided) {
				t.Fatalf("decided values %v, want %v", rep.DecidedValues, tc.wantDecided)
			}
		})
	}
}

// TestQSCDecidedValuesInvariantUnderDelivery pins the acceptance criterion:
// the QSC row's decided-value set at a fixed depth is invariant under the
// delivery adversary — FIFO order, free reordering, and reordering plus an
// adversarial drop all decide exactly the same values, violation-free.
func TestQSCDecidedValuesInvariantUnderDelivery(t *testing.T) {
	inputs := []int{1, 0, 1}
	const depth = 16
	verify := func(t *testing.T, mode DeliveryMode, drops int) *VerifyReport {
		t.Helper()
		p, err := Compile("MP.QSC", 3, WithDelivery(mode, drops))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Verify(context.Background(), inputs, depth, Workers(0), WithSymmetry())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("%s: safety violated: %v", mode, rep.Violations)
		}
		return rep
	}
	base := verify(t, DeliveryOrdered, 0)
	if len(base.DecidedValues) == 0 {
		t.Fatal("ordered exploration reached no decision; the invariance check would be vacuous")
	}
	for _, adv := range []struct {
		mode  DeliveryMode
		drops int
	}{{DeliveryReorder, 0}, {DeliveryLossy, 1}} {
		rep := verify(t, adv.mode, adv.drops)
		if !slices.Equal(rep.DecidedValues, base.DecidedValues) {
			t.Fatalf("%s: decided values %v, ordered decided %v",
				adv.mode, rep.DecidedValues, base.DecidedValues)
		}
		// The stronger adversary explores strictly more interleavings.
		if rep.DistinctStates < base.DistinctStates {
			t.Fatalf("%s: %d distinct states, fewer than ordered's %d",
				adv.mode, rep.DistinctStates, base.DistinctStates)
		}
	}
}

// TestScenarioPortfolioVerify compiles every portfolio scenario through the
// public WithScenario surface and verifies it at its declared depth: the
// planted Byzantine attacks must be found, every honest scenario must
// verify safe.
func TestScenarioPortfolioVerify(t *testing.T) {
	scens := Scenarios()
	if len(scens) == 0 {
		t.Fatal("empty scenario portfolio")
	}
	for _, info := range scens {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			p, err := Compile("MP.QSC", len(info.Inputs), WithScenario(info.Name))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.Verify(context.Background(), info.Inputs, info.Depth, Workers(0))
			if err != nil {
				t.Fatal(err)
			}
			if info.WantViolation && len(rep.Violations) == 0 {
				t.Fatalf("planted violation not found within depth %d", info.Depth)
			}
			if !info.WantViolation && len(rep.Violations) > 0 {
				t.Fatalf("unexpected violation: %v", rep.Violations[0])
			}
		})
	}
}

// TestByzantineScenarioAcrossDeliveryModes re-pins the acceptance criterion
// at the public surface: the planted equivocation violation is reachable
// under every delivery adversary (an explicit WithDelivery overrides the
// scenario's default model).
func TestByzantineScenarioAcrossDeliveryModes(t *testing.T) {
	for _, adv := range []struct {
		mode  DeliveryMode
		drops int
	}{{DeliveryOrdered, 0}, {DeliveryReorder, 0}, {DeliveryLossy, 1}} {
		p, err := Compile("MP.QSC", 3, WithScenario("byz-fork"), WithDelivery(adv.mode, adv.drops))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Verify(context.Background(), []int{0, 1, 0}, 5, Workers(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) == 0 {
			t.Fatalf("%s: planted byz-fork violation not found", adv.mode)
		}
	}
}

// TestVerifyProgress checks the WithProgress liveness callback on both the
// sequential and the parallel explorer: it fires at least once on a
// non-trivial exploration, carries a monotonically plausible state count,
// and leaves the report untouched.
func TestVerifyProgress(t *testing.T) {
	for _, workers := range []int{-1, 4} { // -1: sequential (no Workers option)
		var calls, last atomic.Int64
		opts := []VerifyOption{WithSymmetry(), WithProgress(func(states int64) {
			calls.Add(1)
			last.Store(states)
		})}
		if workers >= 0 {
			opts = append(opts, Workers(workers))
		}
		p, err := Compile("MP.QSC", 3, WithDelivery(DeliveryReorder, 0))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Verify(context.Background(), []int{1, 0, 1}, 16, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() == 0 {
			t.Fatalf("workers=%d: progress callback never fired over %d states", workers, rep.States)
		}
		if got := last.Load(); got < 4096 || got > rep.States {
			t.Fatalf("workers=%d: last progress count %d outside (0, %d]", workers, got, rep.States)
		}
	}
}

// TestDeliveryOptionValidation pins the compile-time rejection of every
// malformed delivery/scenario request as ErrBadInput.
func TestDeliveryOptionValidation(t *testing.T) {
	cases := []struct {
		name  string
		row   string
		n     int
		copts []CompileOption
	}{
		{"delivery-on-shared-memory-row", "T1.9", 3, []CompileOption{WithDelivery(DeliveryOrdered, 0)}},
		{"invalid-mode", "MP.QSC", 3, []CompileOption{WithDelivery(DeliveryMode(99), 0)}},
		{"drops-without-lossy", "MP.QSC", 3, []CompileOption{WithDelivery(DeliveryReorder, 1)}},
		{"negative-drops", "MP.QSC", 3, []CompileOption{WithDelivery(DeliveryLossy, -1)}},
		{"unknown-scenario", "MP.QSC", 3, []CompileOption{WithScenario("no-such")}},
		{"scenario-on-shared-memory-row", "T1.9", 3, []CompileOption{WithScenario("baseline")}},
		{"scenario-wrong-n", "MP.QSC", 2, []CompileOption{WithScenario("baseline")}},
		{"scenario-with-values", "MP.QSC", 3, []CompileOption{WithScenario("baseline"), WithValues(2)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(tc.row, tc.n, tc.copts...); !errors.Is(err, ErrBadInput) {
				t.Fatalf("got %v, want ErrBadInput", err)
			}
		})
	}
}

// TestParseDeliveryMode pins the flag spellings and their round-trip.
func TestParseDeliveryMode(t *testing.T) {
	for _, m := range []DeliveryMode{DeliveryOrdered, DeliveryReorder, DeliveryLossy} {
		got, err := ParseDeliveryMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip %s: got %v, %v", m, got, err)
		}
	}
	if _, err := ParseDeliveryMode("fifo"); !errors.Is(err, ErrBadInput) {
		t.Fatalf("unknown spelling: got %v, want ErrBadInput", err)
	}
	if DeliveryMode(99).String() != "invalid" {
		t.Fatal("out-of-range mode must stringify as invalid")
	}
}
