package repro

// Race-hammer for the compiled handle's concurrency contract: one
// *Protocol, many goroutines, every verb. The Protocol doc promises a
// handle is immutable after Compile and safe for unlimited concurrent use;
// this test (run repeatedly under -race in CI) is that promise's enforcer.

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentHandleVerbs(t *testing.T) {
	p, err := Compile("T1.10", 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{2, 0, 1}

	// A reference outcome per seed: the concurrent callers must all agree
	// with the sequential answers (determinism survives contention).
	want := map[int64]*Outcome{}
	for seed := int64(1); seed <= 4; seed++ {
		out, err := p.Solve(context.Background(), inputs, Seed(seed))
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = out
	}
	refReport, err := p.Verify(context.Background(), inputs, 5)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 6; i++ {
				switch (g + i) % 5 {
				case 0: // Solve
					seed := int64((g+i)%4 + 1)
					out, err := p.Solve(ctx, inputs, Seed(seed))
					if err != nil {
						fail("Solve: %v", err)
						return
					}
					if w := want[seed]; out.Value != w.Value || out.Steps != w.Steps {
						fail("Solve(seed=%d) under contention: %+v, sequential %+v", seed, out, w)
						return
					}
				case 1: // SolveBatch
					specs := []RunSpec{{Inputs: inputs, Seed: 1}, {Inputs: inputs, Seed: 2}}
					for j, r := range p.SolveBatch(ctx, specs, Workers(2)) {
						if r.Err != nil {
							fail("SolveBatch[%d]: %v", j, r.Err)
							return
						}
						if w := want[specs[j].Seed]; r.Outcome.Value != w.Value {
							fail("SolveBatch[%d] value %d, want %d", j, r.Outcome.Value, w.Value)
							return
						}
					}
				case 2: // SolveSeq, including an early break mid-sweep
					specs := []RunSpec{{Inputs: inputs, Seed: 3}, {Inputs: inputs, Seed: 4}, {Inputs: inputs, Seed: 1}}
					seen := 0
					for j, r := range p.SolveSeq(ctx, specs) {
						if r.Err != nil {
							fail("SolveSeq[%d]: %v", j, r.Err)
							return
						}
						if seen++; seen == 2 {
							break
						}
					}
				case 3: // Verify
					rep, err := p.Verify(ctx, inputs, 5)
					if err != nil {
						fail("Verify: %v", err)
						return
					}
					if rep.DistinctStates != refReport.DistinctStates || len(rep.Violations) != len(refReport.Violations) {
						fail("Verify under contention: %d states / %d violations, want %d / %d",
							rep.DistinctStates, len(rep.Violations), refReport.DistinctStates, len(refReport.Violations))
						return
					}
				case 4: // Steps and Bounds (read-only verbs)
					if _, err := p.Steps(ctx); err != nil {
						fail("Steps: %v", err)
						return
					}
					lo, hi := p.Bounds()
					if lo <= 0 || hi < lo {
						fail("Bounds: %d..%d", lo, hi)
						return
					}
					_ = p.CacheKey()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
