package repro

// Tests for the WithValues compile option and the value-domain input
// validation it exposed: checkInputs must validate against the row's value
// domain, not [0, n).

import (
	"context"
	"errors"
	"reflect"
	"slices"
	"sync"
	"testing"
)

// TestWithValuesWideDomain (m > n): inputs in [n, m) are legal and solvable
// — before the fix checkInputs rejected them against [0, n).
func TestWithValuesWideDomain(t *testing.T) {
	p, err := Compile("T1.13", 3, WithValues(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Values(); got != 5 {
		t.Fatalf("Values() = %d, want 5", got)
	}
	inputs := []int{4, 0, 3}
	out, err := p.Solve(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(inputs, out.Value) {
		t.Fatalf("decided %d, not an input %v", out.Value, inputs)
	}
	// The domain boundary still holds.
	if _, err := p.Solve(context.Background(), []int{5, 0, 1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("input 5 on a 5-valued handle: want ErrBadInput, got %v", err)
	}
}

// TestWithValuesNarrowDomain (m < n): inputs must lie in [0, m) even though
// they would pass the old [0, n) check — before the fix they slipped past
// checkInputs and failed deep inside protocol construction without the
// ErrBadInput sentinel.
func TestWithValuesNarrowDomain(t *testing.T) {
	p, err := Compile("T1.12", 3, WithValues(2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Solve(context.Background(), []int{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 0 && out.Value != 1 {
		t.Fatalf("decided %d outside the binary domain", out.Value)
	}
	for _, inputs := range [][]int{{2, 0, 1}, {0, 0, 2}} {
		if _, err := p.Solve(context.Background(), inputs); !errors.Is(err, ErrBadInput) {
			t.Fatalf("inputs %v on a 2-valued handle: want ErrBadInput, got %v", inputs, err)
		}
		if _, err := p.Verify(context.Background(), inputs, 4); !errors.Is(err, ErrBadInput) {
			t.Fatalf("verify inputs %v: want ErrBadInput, got %v", inputs, err)
		}
	}
}

// TestWithValuesRejections: m < 1 and rows without an m-valued form both
// report ErrBadInput (the row id is valid — the requested value domain is
// what it cannot provide, so ErrUnknownRow would mislead).
func TestWithValuesRejections(t *testing.T) {
	if _, err := Compile("T1.13", 3, WithValues(0)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("WithValues(0): want ErrBadInput, got %v", err)
	}
	if _, err := Compile("T1.13", 3, WithValues(-1)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("WithValues(-1): want ErrBadInput, got %v", err)
	}
	if _, err := Compile("T1.10", 3, WithValues(5)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("WithValues on a row without an m-valued form: want ErrBadInput, got %v", err)
	}
	if _, err := Compile("T1.10", 3, WithValues(5)); errors.Is(err, ErrUnknownRow) {
		t.Fatal("a valid row id must not report ErrUnknownRow under WithValues")
	}
}

// TestWithValuesHandleAmortizes: the snapshot-forked second run of an
// m-valued handle matches a fresh first run — the fork path must rebuild
// through the m-valued constructor, not the row's default.
func TestWithValuesHandleAmortizes(t *testing.T) {
	inputs := []int{4, 0, 3}
	fresh := func() *Outcome {
		p, err := Compile("T1.13", 3, WithValues(5))
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.Solve(context.Background(), inputs, Seed(7))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := fresh()
	p, err := Compile("T1.13", 3, WithValues(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // run 0 caches the snapshot; 1, 2 fork it
		got, err := p.Solve(context.Background(), inputs, Seed(7))
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, want)
		}
	}
}

// TestVerifyWithSymmetry: the public symmetry switch must leave the safety
// verdict and decided-value set untouched while strictly shrinking the
// distinct-configuration count on a symmetric instance (two processes share
// input 1), at both worker settings.
func TestVerifyWithSymmetry(t *testing.T) {
	p, err := Compile("T1.9", 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 1, 1}
	exact, err := p.Verify(context.Background(), inputs, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]VerifyOption{
		{WithSymmetry()},
		{WithSymmetry(), Workers(4)},
	} {
		sym, err := p.Verify(context.Background(), inputs, 6, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(sym.Violations) != 0 {
			t.Fatalf("violations under symmetry: %v", sym.Violations)
		}
		if !reflect.DeepEqual(sym.DecidedValues, exact.DecidedValues) {
			t.Fatalf("decided values %v with symmetry, %v without", sym.DecidedValues, exact.DecidedValues)
		}
		if sym.DistinctStates >= exact.DistinctStates {
			t.Fatalf("orbits %d did not drop below %d exact states", sym.DistinctStates, exact.DistinctStates)
		}
	}
}

// TestPristineCacheConcurrentFirstRuns is the race hammer for newRun's
// check-then-act window: many goroutines race first runs on more distinct
// input vectors than the cache holds, repeatedly; the cache must never
// overfill past pristineCacheCap (the insert-time re-check), every run must
// still succeed, and -race must stay quiet.
func TestPristineCacheConcurrentFirstRuns(t *testing.T) {
	p, err := Compile("T1.10", 3) // CAS: cheap, forks natively
	if err != nil {
		t.Fatal(err)
	}
	// 27 distinct vectors — more than three times the cache capacity.
	var vectors [][]int
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 3; c++ {
				vectors = append(vectors, []int{a, b, c})
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(vectors)*4)
	for round := 0; round < 4; round++ {
		for i, v := range vectors {
			wg.Add(1)
			go func(slot int, inputs []int) {
				defer wg.Done()
				_, err := p.Solve(context.Background(), inputs)
				errs[slot] = err
			}(round*len(vectors)+i, v)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	p.mu.Lock()
	size := len(p.pristine)
	p.mu.Unlock()
	if size > pristineCacheCap {
		t.Fatalf("pristine cache overfilled: %d entries, cap %d", size, pristineCacheCap)
	}
	if size == 0 {
		t.Fatal("pristine cache empty: the fork-amortized path never engaged")
	}
}
