package repro

// Extension benchmarks: the paper's Section 10 directions made measurable —
// the obstruction-free → randomized wait-free transformation the intro
// cites ([GHHW13]), the history-object universality remark, and the
// adopt-commit objects ([AE14]) behind the conclusion's conjectures.

import (
	"fmt"
	"testing"

	"repro/internal/adoptcommit"
	"repro/internal/consensus"
	"repro/internal/machine"
	"repro/internal/objects"
	"repro/internal/sim"
	"repro/internal/transform"
)

// BenchmarkExt_RandomizedWaitFree measures the randomized wait-free driver
// over the two-max-register protocol: slots (scheduling grants) and real
// steps until all processes decide, space unchanged at 2 locations.
func BenchmarkExt_RandomizedWaitFree(b *testing.B) {
	n := benchN
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = (i * 5) % n
	}
	var slots, steps int64
	for i := 0; i < b.N; i++ {
		pr := consensus.MaxRegisters(n)
		sys := pr.MustSystem(inputs)
		res, err := transform.Run(sys, transform.FairRotation(n), int64(i+1), 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if fp := sys.Mem().Stats().Footprint(); fp != 2 {
			b.Fatalf("footprint %d", fp)
		}
		slots, steps = res.Slots, res.Steps
		sys.Close()
	}
	b.ReportMetric(float64(slots), "slots")
	b.ReportMetric(float64(steps), "mem-steps")
	b.ReportMetric(2, "locations")
}

// BenchmarkExt_UniversalQueue measures the single-location linearizable
// queue: operations per run with l workers hammering one l-buffer.
func BenchmarkExt_UniversalQueue(b *testing.B) {
	for _, l := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mem := machine.New(machine.SetBuffers(l), 1)
				body := func(p *sim.Proc) int {
					q := objects.New(p, 0, objects.Queue{})
					for j := 0; j < 5; j++ {
						q.Update(objects.QueueOp{Enq: j})
						q.Update(objects.QueueOp{})
					}
					return 0
				}
				sys := sim.NewSystem(mem, make([]int, l), body)
				if _, err := sys.Run(sim.NewRandom(int64(i+1)), 10_000_000); err != nil {
					b.Fatal(err)
				}
				if fp := mem.Stats().Footprint(); fp != 1 {
					b.Fatalf("footprint %d", fp)
				}
				sys.Close()
			}
			b.ReportMetric(float64(10*l), "queue-ops")
			b.ReportMetric(1, "locations")
		})
	}
}

// BenchmarkExt_AdoptCommitRounds measures the round-based adopt-commit
// consensus: how many 2n-register instances a contended run consumes — the
// space quantity the conclusion's conjectures are about.
func BenchmarkExt_AdoptCommitRounds(b *testing.B) {
	n := benchN
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = (i * 3) % n
	}
	var fp int
	for i := 0; i < b.N; i++ {
		pr := adoptcommit.Consensus(n)
		sys, err := pr.NewSystem(inputs)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(sim.NewRandom(int64(i+1)), 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckConsensus(inputs); err != nil {
			b.Fatal(err)
		}
		fp = sys.Mem().Stats().Footprint()
		sys.Close()
	}
	b.ReportMetric(float64(fp), "locations")
	b.ReportMetric(float64(fp)/float64(2*n), "instances")
}

// BenchmarkExt_HeterogeneousBuffers exercises the Section 6.2 extension:
// mixed capacities summing to n.
func BenchmarkExt_HeterogeneousBuffers(b *testing.B) {
	caps := []int{1, 2, 5} // n = 8 over three buffers of differing capacity
	n := 8
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = (i * 3) % n
	}
	var fp int
	for i := 0; i < b.N; i++ {
		pr := consensus.BufferedHeterogeneous(n, caps)
		sys, err := pr.NewSystem(inputs)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(sim.NewRandom(int64(i+1)), 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckConsensus(inputs); err != nil {
			b.Fatal(err)
		}
		fp = sys.Mem().Stats().Footprint()
		sys.Close()
	}
	b.ReportMetric(float64(fp), "locations")
}
