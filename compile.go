package repro

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"iter"
	"sync"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ErrBadInput reports invalid consensus inputs: an empty input vector, a
// vector whose length does not match the compiled n, a value outside the
// handle's value domain [0, Values()) — which is [0, n) unless compiled
// WithValues — or a WithValues request the row cannot satisfy. It is
// detected up front, before any protocol construction, and unwraps with
// errors.Is.
var ErrBadInput = errors.New("repro: invalid inputs")

// Protocol is a compiled handle for one Table 1 row at a fixed number of
// processes: the row is resolved once, the upper-bound protocol is built
// once, and every operation of the package hangs off the handle — Solve,
// SolveBatch, SolveSeq, Verify, Steps, Bounds. A handle is immutable after
// Compile and safe for concurrent use; SolveBatch drives many runs of one
// handle across a worker pool.
//
// The concurrency contract is unrestricted: any number of goroutines may
// call any mix of the handle's verbs — Solve, SolveBatch, SolveSeq, Verify,
// Steps, Bounds, and the metadata accessors — on one handle at the same
// time, without external locking. Every run gets its own memory, processes,
// and scheduler (forked from the handle's pristine snapshots, which are
// never stepped); the only shared mutable state is the snapshot cache and
// the system pool, both internally synchronized. This is what lets a server
// share one compiled handle across concurrent requests; the contract is
// race-hammered by TestConcurrentHandleVerbs.
//
// Handles amortize per-run setup: the first run on a given input vector
// builds a fresh system and, for rows whose processes are explicit forkable
// state machines (every row ported in internal/consensus/steppers.go),
// snapshots it in its pristine initial configuration. Subsequent runs on the
// same inputs fork that snapshot — O(locations + local state) — instead of
// re-resolving the row and rebuilding memory and processes, which is what
// makes seed sweeps over one handle measurably faster than per-run
// construction (see BenchmarkCompiledSolveSweep). The handle keeps one
// snapshot per distinct input vector, up to pristineCacheCap; runs on
// further vectors simply construct fresh systems.
type Protocol struct {
	row core.Row // already specialized for the compile-time buffer capacity
	n   int
	// build constructs a fresh protocol instance for a run — the row's
	// standard n-valued form, or its m-valued form under WithValues. nil
	// when the row has no constructive protocol.
	build func() *consensus.Protocol
	// pr is the compile-time protocol instance. It is used only for
	// metadata reads (Values, WaitFree, Name); runs build fresh instances
	// or fork a pristine snapshot, so no constructor state is shared
	// across concurrent runs. nil when the row has no constructive
	// protocol (Bounds still works).
	pr *consensus.Protocol
	// deliver is the compile-time delivery model for the message-passing
	// rows: set by WithDelivery, defaulted by WithScenario, applied to
	// every system the handle constructs. deliverSet gates it so the pure
	// shared-memory rows keep their exact historical construction path.
	deliver    sim.Delivery
	deliverSet bool
	// scen is the resolved scenario overlay (WithScenario): its crashes
	// are applied and its planted schedule prefix replayed in newRun, so
	// the pristine snapshot cache holds the prefixed configuration.
	scen *scenario.Scenario

	mu sync.Mutex
	// pristine caches one initial-configuration snapshot per input vector;
	// cached snapshots are never stepped after caching. For scenario
	// handles "initial" means the prefixed configuration: crashes applied,
	// planted schedule replayed.
	pristine map[string]*sim.System
	// pool recycles the per-run systems forked off the pristine snapshots:
	// a repeat Solve's fork/run/close cycle rebuilds a recycled System in
	// place instead of allocating one per run. Shared by all of the handle's
	// snapshots; safe for concurrent SolveBatch workers.
	pool sim.Pool
}

// pristineCacheCap bounds the handle's snapshot cache. Entries are never
// evicted — eviction under a mixed-input sweep would pay a fork+close per
// run without ever amortizing — so vectors beyond the cap run on plain
// per-run construction, exactly the pre-handle cost.
const pristineCacheCap = 8

// inputsKey encodes an input vector as the snapshot-cache key.
func inputsKey(inputs []int) string {
	buf := make([]byte, 0, 2*len(inputs))
	for _, in := range inputs {
		buf = binary.AppendVarint(buf, int64(in))
	}
	return string(buf)
}

// Compile resolves a Table 1 row (for example "T1.9" for two max-registers)
// for n processes and returns the reusable handle. Unknown rows report
// ErrUnknownRow; n < 1 reports ErrBadInput.
func Compile(rowID string, n int, opts ...CompileOption) (*Protocol, error) {
	c := compileConfig{l: defaultOptions().l}
	for _, o := range opts {
		o.applyCompile(&c)
	}
	if c.err != nil {
		return nil, c.err
	}
	row, ok := core.RowByID(rowID, c.l)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRow, rowID)
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: need at least one process, got n=%d", ErrBadInput, n)
	}
	p := &Protocol{row: row, n: n}
	switch {
	case c.valuesSet:
		if c.values < 1 {
			return nil, fmt.Errorf("%w: WithValues(%d) needs at least one value", ErrBadInput, c.values)
		}
		// The row id itself is valid, so this is not ErrUnknownRow: the
		// requested value domain is what the row cannot provide.
		if row.BuildValues == nil {
			return nil, fmt.Errorf("%w: row %s has no multi-valued form (WithValues)", ErrBadInput, rowID)
		}
		m := c.values
		p.build = func() *consensus.Protocol { return row.BuildValues(n, m) }
	case row.Build != nil:
		p.build = func() *consensus.Protocol { return row.Build(n) }
	}
	if p.build != nil {
		p.pr = p.build()
	}
	if c.scenarioSet {
		if rowID != "MP.QSC" {
			return nil, fmt.Errorf("%w: WithScenario applies to row MP.QSC, not %s", ErrBadInput, rowID)
		}
		if c.valuesSet {
			return nil, fmt.Errorf("%w: WithScenario fixes the scenario's protocol; WithValues cannot apply", ErrBadInput)
		}
		sc, ok := scenario.ByName(c.scenario)
		if !ok {
			return nil, fmt.Errorf("%w: unknown scenario %q (want one of %v)", ErrBadInput, c.scenario, scenario.Names())
		}
		if n != len(sc.Inputs) {
			return nil, fmt.Errorf("%w: scenario %s is defined for n=%d, handle compiled for n=%d",
				ErrBadInput, sc.Name, len(sc.Inputs), n)
		}
		p.scen = sc
		p.build = sc.Build
		p.pr = p.build()
		p.deliver, p.deliverSet = sc.Delivery, true
	}
	if c.deliverSet {
		if p.pr == nil || len(p.pr.Channels) == 0 {
			return nil, fmt.Errorf("%w: row %s has no message channels (WithDelivery)", ErrBadInput, rowID)
		}
		d, err := c.deliver.simDelivery(c.maxDrops)
		if err != nil {
			return nil, err
		}
		// An explicit WithDelivery overrides a scenario's default model —
		// the delivery-mode sweeps of the acceptance battery.
		p.deliver, p.deliverSet = d, true
	}
	return p, nil
}

// simDelivery maps the public delivery mode onto the simulator's model,
// rejecting out-of-range values up front.
func (m DeliveryMode) simDelivery(maxDrops int) (sim.Delivery, error) {
	switch m {
	case DeliveryOrdered:
		return sim.Delivery{Mode: sim.DeliverOrdered}, nil
	case DeliveryReorder:
		return sim.Delivery{Mode: sim.DeliverReorder}, nil
	case DeliveryLossy:
		return sim.Delivery{Mode: sim.DeliverLossy, MaxDrops: maxDrops}, nil
	}
	return sim.Delivery{}, fmt.Errorf("%w: invalid DeliveryMode(%d)", ErrBadInput, int(m))
}

// Values returns the number of distinct input values the handle accepts:
// inputs must lie in [0, Values()). It is N() unless the handle was
// compiled WithValues (or the row's protocol fixes another domain).
func (p *Protocol) Values() int {
	if p.pr != nil {
		return p.pr.Values
	}
	return p.n
}

// ID returns the compiled row's Table 1 identifier.
func (p *Protocol) ID() string { return p.row.ID }

// N returns the number of processes the handle is compiled for.
func (p *Protocol) N() int { return p.n }

// Row returns the compiled hierarchy row descriptor.
func (p *Protocol) Row() Row { return p.row }

// CacheKey returns a canonical identity string for the compiled handle: the
// (row, n, value domain, buffer capacity) tuple that determines every result
// the handle can produce. Two handles with equal CacheKeys are
// interchangeable — same protocol, same input domain, same bounds — so the
// key is a sound map key for caching layers that share or memoize handles
// (the reprod service's handle and verify-result caches). The format is
// "row=<id> n=<n> values=<m> l=<l>", with l the row's buffer capacity (0 for
// rows without buffers).
func (p *Protocol) CacheKey() string {
	return fmt.Sprintf("row=%s n=%d values=%d l=%d", p.row.ID, p.n, p.Values(), p.row.L)
}

// Bounds evaluates the paper's lower and upper bound on SP(I, n) at the
// compiled n (Unbounded = ∞).
func (p *Protocol) Bounds() (lower, upper int) {
	return core.SP(p.row, p.n)
}

// checkInputs validates an input vector against the compiled n and the
// protocol's value domain. The domain is the row's, not [0, n): a handle
// compiled WithValues(m) takes inputs in [0, m), for m above or below n.
func (p *Protocol) checkInputs(inputs []int) error {
	if len(inputs) == 0 {
		return fmt.Errorf("%w: no inputs", ErrBadInput)
	}
	if len(inputs) != p.n {
		return fmt.Errorf("%w: %d inputs for a %s handle compiled for n=%d",
			ErrBadInput, len(inputs), p.row.ID, p.n)
	}
	dom := p.Values()
	for i, in := range inputs {
		if in < 0 || in >= dom {
			return fmt.Errorf("%w: input %d of process %d outside [0, %d)",
				ErrBadInput, in, i, dom)
		}
	}
	return nil
}

// exploreTable maps the public table mode onto the explorer's enum,
// rejecting out-of-range values up front.
func (m TableMode) exploreTable() (explore.Table, error) {
	switch m {
	case TableExact:
		return explore.TableExact, nil
	case TableCompact:
		return explore.TableCompact, nil
	case TableCompact128:
		return explore.TableCompact128, nil
	case TableBitstate:
		return explore.TableBitstate, nil
	}
	return 0, fmt.Errorf("%w: invalid TableMode(%d)", ErrBadInput, int(m))
}

// errNoProtocol reports a run verb on a row without a constructive protocol.
func (p *Protocol) errNoProtocol() error {
	return fmt.Errorf("repro: row %s has no constructive protocol", p.row.ID)
}

// newRun materializes a fresh system at the protocol's initial
// configuration: a fork of the cached pristine snapshot when one exists for
// these inputs, a full construction otherwise (caching a snapshot for next
// time when the row's processes fork natively and the cache has room).
// Inputs must already be validated.
func (p *Protocol) newRun(inputs []int) (*sim.System, error) {
	key := inputsKey(inputs)
	p.mu.Lock()
	snap, cacheable := p.pristine[key], len(p.pristine) < pristineCacheCap
	p.mu.Unlock()
	if snap != nil {
		// Forking outside the lock keeps concurrent runs parallel: Fork
		// only reads the snapshot, cached snapshots are never stepped, and
		// the no-eviction cache means snap stays live for the handle's
		// lifetime.
		fk, err := snap.Fork()
		if err == nil {
			return fk, nil
		}
		// A failed fork falls back to full construction below.
	}
	// Build a fresh protocol instance per construction, exactly like the
	// pre-handle API: constructors stay free of cross-run sharing.
	sys, err := p.buildRun(inputs)
	if err != nil {
		return nil, err
	}
	if cacheable && sys.ForksNatively() {
		if fk, err := sys.Fork(); err == nil {
			p.mu.Lock()
			if p.pristine == nil {
				p.pristine = make(map[string]*sim.System)
			}
			if _, raced := p.pristine[key]; raced || len(p.pristine) >= pristineCacheCap {
				// Another run cached this vector first (or filled the
				// cache) between our check and now.
				p.mu.Unlock()
				fk.Close()
			} else {
				// Runs forked off this snapshot recycle through the handle's
				// pool; the snapshot itself is never stepped or closed.
				fk.SetPool(&p.pool)
				p.pristine[key] = fk
				p.mu.Unlock()
			}
		}
	}
	return sys, nil
}

// buildRun constructs one run's system from scratch: a fresh protocol
// instance under the compile-time delivery model, then — for scenario
// handles — the scenario's initial crashes and its planted schedule prefix.
// The prefixed configuration is what newRun snapshots, so scenario runs fork
// past the prefix replay too.
func (p *Protocol) buildRun(inputs []int) (*sim.System, error) {
	var opts []sim.SystemOption
	if p.deliverSet {
		opts = append(opts, sim.WithDelivery(p.deliver))
	}
	sys, err := p.build().NewSystem(inputs, opts...)
	if err != nil {
		return nil, err
	}
	if p.scen != nil {
		for _, pid := range p.scen.Crashes {
			sys.Crash(pid)
		}
		for i, pid := range p.scen.Prefix {
			if _, err := sys.Step(pid); err != nil {
				sys.Close()
				return nil, fmt.Errorf("repro: scenario %s prefix step %d (pid %d): %w",
					p.scen.Name, i, pid, err)
			}
		}
	}
	return sys, nil
}

// finishSolve checks a finished run and assembles its Outcome from a stats
// snapshot taken while the run's System was still alive (pooled systems are
// rebuilt after Close, invalidating their Memory).
func finishSolve(inputs []int, maxSteps int64, res *sim.Result, st machine.Stats) (*Outcome, error) {
	if err := res.CheckConsensus(inputs); err != nil {
		return nil, err
	}
	v, ok := res.AgreedValue()
	if !ok {
		return nil, fmt.Errorf("%w (%d steps)", ErrNoDecision, maxSteps)
	}
	return &Outcome{
		Value:     v,
		Footprint: st.Footprint(),
		Steps:     st.Steps,
		MaxBits:   st.MaxBits,
	}, nil
}

// Solve runs the compiled protocol on the given inputs — one per process,
// values in [0, Values()) — under a fair random schedule and returns the
// agreed value with space and step measurements. Long runs are cancellable
// through ctx; cancellation returns ctx.Err().
func (p *Protocol) Solve(ctx context.Context, inputs []int, opts ...SolveOption) (*Outcome, error) {
	c := p.solveConfig(opts)
	return p.solveOne(ctx, inputs, c.seed, c.maxSteps)
}

// solveOne is the shared single-run path of Solve, SolveBatch error
// pre-checks, and SolveSeq.
func (p *Protocol) solveOne(ctx context.Context, inputs []int, seed, maxSteps int64) (*Outcome, error) {
	if p.pr == nil {
		return nil, p.errNoProtocol()
	}
	if err := p.checkInputs(inputs); err != nil {
		return nil, err
	}
	sys, err := p.newRun(inputs)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	res, err := sys.RunContext(ctx, sim.NewRandom(seed), maxSteps)
	if err != nil {
		return nil, err
	}
	return finishSolve(inputs, maxSteps, res, sys.Mem().Stats())
}

// RunSpec describes one run in a SolveBatch or SolveSeq sweep over a
// compiled handle: the process inputs and the schedule seed. Seed is used
// verbatim, so a sweep entry equals Solve(ctx, Inputs, Seed(Seed)) exactly;
// a zero MaxSteps takes the batch default (MaxSteps option, else 50
// million).
type RunSpec struct {
	Inputs   []int
	Seed     int64
	MaxSteps int64
}

// RunResult pairs a RunSpec with its result. Exactly one of Outcome and Err
// is set.
type RunResult struct {
	Spec    RunSpec
	Outcome *Outcome
	Err     error
}

// budget resolves a spec's step budget against the batch default.
func (sp RunSpec) budget(dflt int64) int64 {
	if sp.MaxSteps != 0 {
		return sp.MaxSteps
	}
	return dflt
}

// SolveBatch runs many independent sweeps of the compiled protocol in
// parallel across a worker pool (Workers option; default GOMAXPROCS) and
// returns one result per spec, in order. Each run gets its own memory,
// processes, and scheduler — forked from the handle's pristine snapshot
// when the inputs repeat — so results are bit-identical to running the
// specs one at a time through Solve. Cancelling ctx stops the batch
// promptly; unfinished specs report ctx.Err().
func (p *Protocol) SolveBatch(ctx context.Context, specs []RunSpec, opts ...BatchOption) []RunResult {
	c := p.batchConfig(opts)
	out := make([]RunResult, len(specs))
	jobs := make([]sim.BatchJob, len(specs))
	stats := make([]machine.Stats, len(specs))
	for i, sp := range specs {
		out[i].Spec = sp
		i, sp := i, sp
		jobs[i] = sim.BatchJob{
			Make: func() (*sim.System, error) {
				return p.makeRun(sp.Inputs)
			},
			Sched: func() sim.Scheduler { return sim.NewRandom(sp.Seed) },
			// The run's System is recycled on Close (the handle's pool), so
			// its measurements are snapshotted while it is still alive.
			Done:     func(sys *sim.System) { stats[i] = sys.Mem().Stats() },
			MaxSteps: sp.budget(c.maxSteps),
		}
	}
	results, _ := sim.RunBatch(ctx, jobs, c.workers)
	for i, r := range results {
		if r.Err != nil {
			out[i].Err = r.Err
			continue
		}
		out[i].Outcome, out[i].Err = finishSolve(specs[i].Inputs, jobs[i].MaxSteps, r.Result, stats[i])
	}
	return out
}

// makeRun is newRun behind the verb-independent validity checks, for batch
// job factories.
func (p *Protocol) makeRun(inputs []int) (*sim.System, error) {
	if p.pr == nil {
		return nil, p.errNoProtocol()
	}
	if err := p.checkInputs(inputs); err != nil {
		return nil, err
	}
	return p.newRun(inputs)
}

// SolveSeq streams a sweep: it returns an iterator yielding (index, result)
// pairs in spec order, running each spec lazily when the consumer asks for
// it. Breaking out of the range stops the sweep; a cancelled ctx yields
// exactly one result carrying ctx.Err() — the interrupted or first
// unstarted spec — and then stops. Memory use is one live run regardless
// of sweep length, which is the intended way to scan very long (or
// unbounded, via a generated slice) seed sweeps for a condition.
func (p *Protocol) SolveSeq(ctx context.Context, specs []RunSpec) iter.Seq2[int, RunResult] {
	dflt := defaultOptions().maxSteps
	return func(yield func(int, RunResult) bool) {
		for i, sp := range specs {
			if err := ctx.Err(); err != nil {
				yield(i, RunResult{Spec: sp, Err: err})
				return
			}
			out, err := p.solveOne(ctx, sp.Inputs, sp.Seed, sp.budget(dflt))
			if !yield(i, RunResult{Spec: sp, Outcome: out, Err: err}) {
				return
			}
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				// The interrupted run already carried the cancellation;
				// don't report the next spec as a second failure.
				return
			}
		}
	}
}

// Verify exhaustively model-checks the compiled protocol on the given
// inputs over every interleaving up to maxDepth scheduler steps (0 = until
// all processes decide; only safe for wait-free rows). Exploration runs on
// forked configuration snapshots with canonical-state deduplication; the
// Workers option spreads it across a work-stealing pool without changing
// the report, and WithSymmetry additionally merges configurations equal up
// to location/process symmetry without changing the verdict. Cancelling
// ctx aborts the exploration with ctx.Err().
func (p *Protocol) Verify(ctx context.Context, inputs []int, maxDepth int, opts ...VerifyOption) (*VerifyReport, error) {
	c := p.verifyConfig(opts)
	if c.err != nil {
		return nil, c.err
	}
	if p.pr == nil {
		return nil, p.errNoProtocol()
	}
	if err := p.checkInputs(inputs); err != nil {
		return nil, err
	}
	// Unbounded exploration only terminates when every process decides in a
	// bounded number of own steps regardless of scheduling: the
	// obstruction-free rows have infinite interleaving trees.
	if maxDepth <= 0 && !p.pr.WaitFree {
		return nil, fmt.Errorf("repro: row %s is not wait-free; Verify needs maxDepth > 0 to bound the exploration", p.row.ID)
	}
	table, err := c.table.exploreTable()
	if err != nil {
		return nil, err
	}
	eo := explore.Options{
		MaxDepth:   maxDepth,
		MaxRuns:    c.maxRuns,
		SoloBudget: c.soloBudget,
		Strategy:   explore.StrategyFork,
		Dedup:      true,
		Symmetry:   c.symmetry,
		Table:      table,
		TableBytes: c.tableBytes,
		SpillNodes: c.spillNodes,
		SpillDir:   c.spillDir,
		Progress:   c.progress,
	}
	if c.workersSet {
		eo.Strategy, eo.Workers = explore.StrategyParallel, c.workers
	}
	rep, err := explore.Exhaustive(ctx, func() (*sim.System, error) {
		return p.newRun(inputs)
	}, eo)
	if err != nil {
		return nil, err
	}
	out := &VerifyReport{
		Runs: rep.Runs, States: rep.States, Deduped: rep.Deduped, Truncated: rep.Truncated,
		DecidedValues: rep.DecidedValues, DistinctStates: rep.DistinctStates,
		UnderApprox: rep.UnderApprox, FalseMergeProb: rep.FalseMergeProb,
		Mem: VerifyMemStats{
			TableBytes:     rep.Mem.TableBytes,
			TableOccupancy: rep.Mem.TableOccupancy,
			PeakFrontier:   rep.Mem.PeakFrontier,
			PeakResident:   rep.Mem.PeakResident,
			SpilledBatches: rep.Mem.SpilledBatches,
		},
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	return out, nil
}

// Steps profiles the compiled protocol's solo and contended step complexity
// at the compiled n — the extra hierarchy axis the paper's conclusion calls
// for.
func (p *Protocol) Steps(ctx context.Context) (*StepProfile, error) {
	return core.MeasureSteps(ctx, p.row, p.n, defaultOptions().maxSteps)
}
