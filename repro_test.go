package repro

import (
	"errors"
	"testing"
)

func TestSolveMaxRegisters(t *testing.T) {
	inputs := []int{3, 1, 4, 1, 2}
	out, err := Solve("T1.9", inputs, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	valid := false
	for _, in := range inputs {
		if out.Value == in {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decided %d, not an input", out.Value)
	}
	if out.Footprint != 2 {
		t.Fatalf("max-register consensus used %d locations, want 2", out.Footprint)
	}
	if out.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestSolveEveryConstructiveRow(t *testing.T) {
	inputs := []int{2, 0, 3, 1}
	for _, row := range Hierarchy(2) {
		if row.Build == nil {
			continue
		}
		out, err := Solve(row.ID, inputs, WithSeed(3), WithBufferCap(2))
		if err != nil {
			t.Fatalf("row %s: %v", row.ID, err)
		}
		if out.Value < 0 || out.Value > 3 {
			t.Fatalf("row %s: decided %d", row.ID, out.Value)
		}
	}
}

func TestSolveUnknownRow(t *testing.T) {
	if _, err := Solve("T9.99", []int{0, 1}); !errors.Is(err, ErrUnknownRow) {
		t.Fatalf("want ErrUnknownRow, got %v", err)
	}
}

func TestSpaceBounds(t *testing.T) {
	lo, up, err := SpaceBounds("T1.6", 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 || up != 4 {
		t.Fatalf("buffer bounds (%d,%d), want (3,4)", lo, up)
	}
	lo, up, err = SpaceBounds("T1.1", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != Unbounded || up != Unbounded {
		t.Fatalf("TAS row bounds (%d,%d), want ∞", lo, up)
	}
	if _, _, err := SpaceBounds("nope", 5, 1); !errors.Is(err, ErrUnknownRow) {
		t.Fatal("unknown row accepted")
	}
}

func TestBufferCapacitySweep(t *testing.T) {
	inputs := []int{0, 1, 2, 3, 4, 5}
	for l := 1; l <= 4; l++ {
		out, err := Solve("T1.6", inputs, WithBufferCap(l))
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		want := (len(inputs) + l - 1) / l
		if out.Footprint != want {
			t.Fatalf("l=%d: footprint %d, want ceil(n/l)=%d", l, out.Footprint, want)
		}
	}
}

func TestSteps(t *testing.T) {
	p, err := Steps("T1.9", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Solo <= 0 || p.ContendedTotal < p.Solo {
		t.Fatalf("implausible profile %+v", p)
	}
	if _, err := Steps("nope", 4, 1); !errors.Is(err, ErrUnknownRow) {
		t.Fatal("unknown row accepted")
	}
}
