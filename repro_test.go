package repro

import (
	"errors"
	"reflect"
	"testing"
)

func TestSolveMaxRegisters(t *testing.T) {
	inputs := []int{3, 1, 4, 1, 2}
	out, err := Solve("T1.9", inputs, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	valid := false
	for _, in := range inputs {
		if out.Value == in {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decided %d, not an input", out.Value)
	}
	if out.Footprint != 2 {
		t.Fatalf("max-register consensus used %d locations, want 2", out.Footprint)
	}
	if out.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestSolveEveryConstructiveRow(t *testing.T) {
	inputs := []int{2, 0, 3, 1}
	for _, row := range Hierarchy(2) {
		if row.Build == nil {
			continue
		}
		out, err := Solve(row.ID, inputs, WithSeed(3), WithBufferCap(2))
		if err != nil {
			t.Fatalf("row %s: %v", row.ID, err)
		}
		if out.Value < 0 || out.Value > 3 {
			t.Fatalf("row %s: decided %d", row.ID, out.Value)
		}
	}
}

func TestSolveUnknownRow(t *testing.T) {
	if _, err := Solve("T9.99", []int{0, 1}); !errors.Is(err, ErrUnknownRow) {
		t.Fatalf("want ErrUnknownRow, got %v", err)
	}
}

func TestSpaceBounds(t *testing.T) {
	lo, up, err := SpaceBounds("T1.6", 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 || up != 4 {
		t.Fatalf("buffer bounds (%d,%d), want (3,4)", lo, up)
	}
	lo, up, err = SpaceBounds("T1.1", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != Unbounded || up != Unbounded {
		t.Fatalf("TAS row bounds (%d,%d), want ∞", lo, up)
	}
	if _, _, err := SpaceBounds("nope", 5, 1); !errors.Is(err, ErrUnknownRow) {
		t.Fatal("unknown row accepted")
	}
}

func TestBufferCapacitySweep(t *testing.T) {
	inputs := []int{0, 1, 2, 3, 4, 5}
	for l := 1; l <= 4; l++ {
		out, err := Solve("T1.6", inputs, WithBufferCap(l))
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		want := (len(inputs) + l - 1) / l
		if out.Footprint != want {
			t.Fatalf("l=%d: footprint %d, want ceil(n/l)=%d", l, out.Footprint, want)
		}
	}
}

func TestSolveNoDecisionSentinel(t *testing.T) {
	// Two max-registers need far more than one step to decide: the budget
	// exhausts and the typed sentinel must surface, unwrappable by callers.
	_, err := Solve("T1.9", []int{1, 0, 2}, WithMaxSteps(1))
	if !errors.Is(err, ErrNoDecision) {
		t.Fatalf("want ErrNoDecision, got %v", err)
	}
}

func TestSolveBatchMatchesSolve(t *testing.T) {
	inputs := []int{3, 1, 4, 1, 2}
	var specs []BatchSpec
	for seed := int64(1); seed <= 16; seed++ {
		specs = append(specs, BatchSpec{Row: "T1.9", Inputs: inputs, Seed: seed})
	}
	outs := SolveBatch(specs, 0)
	if len(outs) != len(specs) {
		t.Fatalf("got %d outcomes for %d specs", len(outs), len(specs))
	}
	for i, bo := range outs {
		if bo.Err != nil {
			t.Fatalf("spec %d: %v", i, bo.Err)
		}
		want, err := Solve("T1.9", inputs, WithSeed(specs[i].Seed))
		if err != nil {
			t.Fatal(err)
		}
		if *bo.Outcome != *want {
			t.Fatalf("seed %d: batch %+v != serial %+v", specs[i].Seed, *bo.Outcome, *want)
		}
	}
}

func TestSolveBatchMixedRows(t *testing.T) {
	specs := []BatchSpec{
		{Row: "T1.9", Inputs: []int{1, 0, 2}, Seed: 5},
		{Row: "T9.99", Inputs: []int{0, 1}, Seed: 1},            // unknown row
		{Row: "T1.10", Inputs: []int{2, 2, 1}, Seed: 9},         // CAS
		{Row: "T1.9", Inputs: []int{1, 0, 2}, MaxSteps: 1},      // budget exhausted
		{Row: "T1.6", Inputs: []int{0, 1, 2, 3}, Seed: 4, L: 2}, // buffers
	}
	outs := SolveBatch(specs, 2)
	if outs[0].Err != nil || outs[2].Err != nil || outs[4].Err != nil {
		t.Fatalf("healthy specs errored: %v / %v / %v", outs[0].Err, outs[2].Err, outs[4].Err)
	}
	if !errors.Is(outs[1].Err, ErrUnknownRow) {
		t.Fatalf("spec 1: want ErrUnknownRow, got %v", outs[1].Err)
	}
	if !errors.Is(outs[3].Err, ErrNoDecision) {
		t.Fatalf("spec 3: want ErrNoDecision, got %v", outs[3].Err)
	}
	if outs[4].Outcome.Footprint != 2 {
		t.Fatalf("l-buffer run footprint %d, want ceil(4/2)=2", outs[4].Outcome.Footprint)
	}
}

func TestSteps(t *testing.T) {
	p, err := Steps("T1.9", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Solo <= 0 || p.ContendedTotal < p.Solo {
		t.Fatalf("implausible profile %+v", p)
	}
	if _, err := Steps("nope", 4, 1); !errors.Is(err, ErrUnknownRow) {
		t.Fatal("unknown row accepted")
	}
}

// TestVerifyWorkers: the parallel verifier must agree with the sequential
// one on the order-invariant quantities and be identical across worker
// counts; Solve rejects the Verify-only option.
func TestVerifyWorkers(t *testing.T) {
	inputs := []int{0, 1, 2}
	seq, err := Verify("T1.10", inputs, 6)
	if err != nil {
		t.Fatal(err)
	}
	var first *VerifyReport
	for _, w := range []int{1, 4} {
		par, err := Verify("T1.10", inputs, 6, WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Violations) != 0 {
			t.Fatalf("workers=%d: %v", w, par.Violations)
		}
		if !reflect.DeepEqual(par.DecidedValues, seq.DecidedValues) ||
			par.DistinctStates != seq.DistinctStates {
			t.Fatalf("workers=%d: decided %v distinct %d, sequential %v / %d",
				w, par.DecidedValues, par.DistinctStates, seq.DecidedValues, seq.DistinctStates)
		}
		if first == nil {
			first = par
		} else if !reflect.DeepEqual(par, first) {
			t.Fatalf("verify report depends on worker count:\n%+v\n%+v", first, par)
		}
	}
	if _, err := Solve("T1.10", inputs, WithWorkers(4)); err == nil {
		t.Fatal("Solve accepted WithWorkers")
	}
}
