package repro

// The deprecated free functions are thin wrappers over compiled handles;
// this battery pins them byte-identical to the equivalent handle calls, so
// the legacy surface cannot drift while it remains.

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestShimSolveMatchesHandle: for every constructive row, the deprecated
// Solve must return an Outcome identical to Compile + Protocol.Solve with
// the same seed, capacity, and budget.
func TestShimSolveMatchesHandle(t *testing.T) {
	inputs := []int{2, 0, 3, 1}
	for _, row := range Hierarchy(2) {
		if row.Build == nil {
			continue
		}
		for _, seed := range []int64{1, 7, 1234} {
			legacy, err := Solve(row.ID, inputs, WithSeed(seed), WithBufferCap(2))
			if err != nil {
				t.Fatalf("row %s seed %d: legacy: %v", row.ID, seed, err)
			}
			p, err := Compile(row.ID, len(inputs), BufferCap(2))
			if err != nil {
				t.Fatalf("row %s: compile: %v", row.ID, err)
			}
			handle, err := p.Solve(context.Background(), inputs, Seed(seed))
			if err != nil {
				t.Fatalf("row %s seed %d: handle: %v", row.ID, seed, err)
			}
			if *legacy != *handle {
				t.Fatalf("row %s seed %d: legacy %+v != handle %+v", row.ID, seed, *legacy, *handle)
			}
			// The handle's second run takes the fork-amortized path (for
			// forkable rows); it must not change the outcome either.
			again, err := p.Solve(context.Background(), inputs, Seed(seed))
			if err != nil {
				t.Fatalf("row %s seed %d: amortized: %v", row.ID, seed, err)
			}
			if *again != *handle {
				t.Fatalf("row %s seed %d: amortized %+v != fresh %+v", row.ID, seed, *again, *handle)
			}
		}
	}
}

// TestShimVerifyMatchesHandle pins the deprecated Verify (sequential and
// parallel) against Protocol.Verify.
func TestShimVerifyMatchesHandle(t *testing.T) {
	inputs := []int{0, 1, 2}
	p, err := Compile("T1.10", len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 4} { // -1 marks "option absent"
		var legacyOpts []Option
		var handleOpts []VerifyOption
		if workers >= 0 {
			legacyOpts = append(legacyOpts, WithWorkers(workers))
			handleOpts = append(handleOpts, Workers(workers))
		}
		legacy, err := Verify("T1.10", inputs, 6, legacyOpts...)
		if err != nil {
			t.Fatal(err)
		}
		handle, err := p.Verify(context.Background(), inputs, 6, handleOpts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, handle) {
			t.Fatalf("workers=%d: legacy %+v != handle %+v", workers, legacy, handle)
		}
	}
}

// TestShimStepsAndBoundsMatchHandle pins Steps and SpaceBounds.
func TestShimStepsAndBoundsMatchHandle(t *testing.T) {
	for _, row := range Hierarchy(3) {
		p, err := Compile(row.ID, 5, BufferCap(3))
		if err != nil {
			t.Fatalf("row %s: %v", row.ID, err)
		}
		lo, up, err := SpaceBounds(row.ID, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		hlo, hup := p.Bounds()
		if lo != hlo || up != hup {
			t.Fatalf("row %s: legacy bounds (%d,%d), handle (%d,%d)", row.ID, lo, up, hlo, hup)
		}
	}
	legacy, err := Steps("T1.9", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile("T1.9", 4, BufferCap(1))
	if err != nil {
		t.Fatal(err)
	}
	handle, err := p.Steps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, handle) {
		t.Fatalf("legacy profile %+v != handle %+v", legacy, handle)
	}
}

// TestShimSolveBatchMatchesHandle: a mixed legacy batch must agree with
// per-handle SolveBatch sweeps, and with serial handle Solve calls.
func TestShimSolveBatchMatchesHandle(t *testing.T) {
	inputs := []int{3, 1, 4, 1, 2}
	var legacySpecs []BatchSpec
	var runSpecs []RunSpec
	for seed := int64(1); seed <= 12; seed++ {
		legacySpecs = append(legacySpecs, BatchSpec{Row: "T1.9", Inputs: inputs, Seed: seed})
		runSpecs = append(runSpecs, RunSpec{Inputs: inputs, Seed: seed})
	}
	legacy := SolveBatch(legacySpecs, 3)
	p, err := Compile("T1.9", len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	handle := p.SolveBatch(context.Background(), runSpecs, Workers(3))
	if len(legacy) != len(handle) {
		t.Fatalf("length mismatch %d vs %d", len(legacy), len(handle))
	}
	for i := range legacy {
		if legacy[i].Err != nil || handle[i].Err != nil {
			t.Fatalf("spec %d errored: %v / %v", i, legacy[i].Err, handle[i].Err)
		}
		if *legacy[i].Outcome != *handle[i].Outcome {
			t.Fatalf("spec %d: legacy %+v != handle %+v", i, *legacy[i].Outcome, *handle[i].Outcome)
		}
		serial, err := p.Solve(context.Background(), inputs, Seed(runSpecs[i].Seed))
		if err != nil {
			t.Fatal(err)
		}
		if *serial != *handle[i].Outcome {
			t.Fatalf("spec %d: serial %+v != batch %+v", i, *serial, *handle[i].Outcome)
		}
	}
}

// TestVerifyCancellation: cancelling a Verify mid-exploration returns
// ctx.Err() promptly on both the sequential and the parallel strategy.
func TestVerifyCancellation(t *testing.T) {
	inputs := []int{0, 1, 2, 3}
	p, err := Compile("T1.3", len(inputs)) // registers: huge interleaving tree
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 4} {
		var opts []VerifyOption
		if workers >= 0 {
			opts = append(opts, Workers(workers))
		}
		pre, preCancel := context.WithCancel(context.Background())
		preCancel()
		if _, err := p.Verify(pre, inputs, 40, opts...); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d pre-cancelled: want context.Canceled, got %v", workers, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		if _, err := p.Verify(ctx, inputs, 40, opts...); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
	}
}

// TestSolveBatchCancellation: a cancelled context fails every unfinished
// spec with ctx.Err() and the batch returns promptly.
func TestSolveBatchCancellation(t *testing.T) {
	inputs := []int{3, 1, 4, 1, 2}
	p, err := Compile("T1.9", len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]RunSpec, 64)
	for i := range specs {
		specs[i] = RunSpec{Inputs: inputs, Seed: int64(i + 1)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	outs := p.SolveBatch(ctx, specs, Workers(4))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
	for i, ro := range outs {
		if !errors.Is(ro.Err, context.Canceled) {
			t.Fatalf("spec %d: want context.Canceled, got %v", i, ro.Err)
		}
	}
}

// TestSolveSeqCancellation: a sweep stream observes cancellation between
// elements — the next yield carries ctx.Err() and the stream ends.
func TestSolveSeqCancellation(t *testing.T) {
	inputs := []int{3, 1, 4, 1, 2}
	p, err := Compile("T1.9", len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]RunSpec, 8)
	for i := range specs {
		specs[i] = RunSpec{Inputs: inputs, Seed: int64(i + 1)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []RunResult
	for i, r := range p.SolveSeq(ctx, specs) {
		got = append(got, r)
		if i == 2 {
			cancel()
		}
	}
	if len(got) != 4 {
		t.Fatalf("stream yielded %d results, want 3 outcomes + 1 cancellation", len(got))
	}
	for i := 0; i < 3; i++ {
		if got[i].Err != nil {
			t.Fatalf("result %d errored before cancellation: %v", i, got[i].Err)
		}
	}
	if !errors.Is(got[3].Err, context.Canceled) {
		t.Fatalf("result 3: want context.Canceled, got %v", got[3].Err)
	}
}
