package repro

import "repro/internal/scenario"

// ScenarioInfo describes one entry of the adversarial scenario portfolio —
// the crafted network and fault situations over the MP.QSC row that
// WithScenario compiles. The portfolio covers crash-f silence on both sides
// of the resilience bound, message reordering and loss, offline-and-return
// and partition-heal schedules, and scripted Byzantine senders.
type ScenarioInfo struct {
	// Name is the stable identifier WithScenario (and the cmd/consensus
	// -scenario flag) accepts.
	Name string
	// Description says what the adversary does and what should happen.
	Description string
	// Inputs are the canonical process inputs: the scenario's planted
	// verdicts (a Byzantine fork reaching disagreement, a resilience bound
	// holding) are staged against these values, and len(Inputs) is the n
	// the scenario's handle must be compiled for.
	Inputs []int
	// Depth is the exploration depth from the scenario's prefixed
	// configuration that suffices to reach its verdict — the natural
	// maxDepth for Verify on the scenario's handle.
	Depth int
	// WantViolation marks scenarios whose planted adversary genuinely
	// breaks safety: Verify must find a violation within Depth. For all
	// other scenarios it must find none.
	WantViolation bool
	// ExpectDecision marks scenarios whose fair runs end with every
	// correct process decided; false past the resilience bound, where
	// safety holds but no quorum can form.
	ExpectDecision bool
}

// Scenarios lists the adversarial scenario portfolio in documentation
// order. Each entry's Name is valid for WithScenario on an MP.QSC handle
// compiled for n = len(Inputs) processes.
func Scenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, sc := range scenario.Portfolio() {
		out = append(out, ScenarioInfo{
			Name:           sc.Name,
			Description:    sc.Description,
			Inputs:         append([]int(nil), sc.Inputs...),
			Depth:          sc.Depth,
			WantViolation:  sc.WantViolation,
			ExpectDecision: sc.ExpectDecision,
		})
	}
	return out
}
