package repro

import (
	"context"
	"testing"

	"repro/internal/sim"
)

// A handle's pool recycles run systems across Solves; a rebuilt (recycled)
// fork must be indistinguishable from a fresh one — same initial state key,
// same execution under the same seed, run after run.
func TestPooledRunRecyclingDeterministic(t *testing.T) {
	p, err := Compile("T1.9", 5)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{3, 1, 4, 1, 2}
	// Prime the snapshot cache so newRun forks (and recycles) thereafter.
	if _, err := p.Solve(context.Background(), inputs, Seed(1)); err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) (string, int64) {
		sys, err := p.newRun(inputs)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		key, _ := sys.StateKey()
		if _, err := sys.RunContext(context.Background(), sim.NewRandom(seed), 100000); err != nil {
			t.Fatal(err)
		}
		return key, sys.Steps()
	}
	k1, s1 := run(2) // pool empty at fork time: the fresh path
	for i := 0; i < 4; i++ {
		k, s := run(2) // recycled path
		if k != k1 || s != s1 {
			t.Fatalf("recycled run %d diverged: key match=%v steps %d vs %d", i, k == k1, s, s1)
		}
	}
}

// A warm handle's repeat Solve must stay within a small allocation budget:
// the run system comes from the pool, so what remains is the protocol's own
// working state (T1.9's big.Int arithmetic), the result, and the outcome.
// Measured at ~200 allocations when the pooling work landed; the bound has
// 2x headroom and exists to catch the pool silently detaching (which puts a
// full system construction — thousands of allocations — back on every call).
func TestSolveRepeatAllocs(t *testing.T) {
	p, err := Compile("T1.9", 5)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{3, 1, 4, 1, 2}
	ctx := context.Background()
	for i := int64(1); i <= 3; i++ {
		if _, err := p.Solve(ctx, inputs, Seed(i)); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := p.Solve(ctx, inputs, Seed(7)); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per repeat Solve: %.1f", avg)
	if avg > 400 {
		t.Fatalf("repeat Solve allocates %.0f times, want <= 400", avg)
	}
}
